#include "net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace hg::net {

namespace {

api::Status transport_error(const std::string& what) {
  return api::Status::Unavailable(what + ": " + errno_string(errno));
}

api::Status disconnected_status() {
  return api::Status::Unavailable("client is not connected");
}

}  // namespace

api::Result<Client> Client::connect(const ClientConfig& cfg) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return transport_error("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(cfg.port);
  if (::inet_pton(AF_INET, cfg.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return api::Status::InvalidArgument(
        "ClientConfig::host is not an IPv4 address: " + cfg.host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const api::Status status = transport_error(
        "connect(" + cfg.host + ":" + std::to_string(cfg.port) + ") failed");
    ::close(fd);
    return status;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (cfg.recv_timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = cfg.recv_timeout_ms / 1000;
    tv.tv_usec = (cfg.recv_timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  Client client;
  client.fd_ = fd;
  return client;
}

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      next_id_(other.next_id_),
      sent_goodbye_(other.sent_goodbye_),
      in_(std::move(other.in_)),
      stash_(std::move(other.stash_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    next_id_ = other.next_id_;
    sent_goodbye_ = other.sent_goodbye_;
    in_ = std::move(other.in_);
    stash_ = std::move(other.stash_);
  }
  return *this;
}

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

api::Status Client::goodbye() {
  if (sent_goodbye_) return api::Status::Ok();  // idempotent
  api::Result<std::uint64_t> id = send_frame(FrameType::kGoodbye, 0, "");
  if (!id.ok()) return id.status();
  sent_goodbye_ = true;
  ::shutdown(fd_, SHUT_WR);
  return api::Status::Ok();
}

api::Result<std::uint64_t> Client::send_frame(FrameType type,
                                              std::uint64_t deadline_us,
                                              const std::string& payload) {
  if (fd_ < 0) return disconnected_status();
  // After goodbye() the write side is gone but replies are still being
  // collected: refuse here instead of letting EPIPE tear down the whole
  // connection (and with it the pending replies).
  if (sent_goodbye_)
    return api::Status::Unavailable("no more requests after goodbye()");
  if (payload.size() > kMaxPayloadBytes)
    return api::Status::InvalidArgument("request payload exceeds the wire "
                                        "limit");
  const std::uint64_t id = next_id_++;
  const std::string frame =
      encode_frame(type, /*reply=*/false, id, deadline_us, payload);
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = ::send(fd_, frame.data() + sent, frame.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    const api::Status status = transport_error("send() failed");
    close();
    return status;
  }
  return id;
}

api::Result<std::string> Client::recv_reply(std::uint64_t id,
                                            FrameType type) {
  const std::uint16_t want_type =
      static_cast<std::uint16_t>(type) | kReplyBit;
  for (;;) {
    // Served already (a pipelined peer's reply landed first)?
    auto it = stash_.find(id);
    if (it != stash_.end()) {
      std::pair<std::uint16_t, std::string> reply = std::move(it->second);
      stash_.erase(it);
      if (reply.first != want_type)
        return api::Status::Unavailable(
            "reply type mismatch (got " + std::to_string(reply.first) +
            ", want " + std::to_string(want_type) + ")");
      return std::move(reply.second);
    }
    if (fd_ < 0) return disconnected_status();

    // Pull complete frames off the socket into the stash.
    while (in_.size() >= kHeaderSize) {
      FrameHeader h;
      if (!decode_header(in_.data(), in_.size(), &h)) {
        close();
        return api::Status::Unavailable("unframeable reply stream");
      }
      if (in_.size() < kHeaderSize + h.payload_len) break;
      stash_[h.request_id] = {h.type,
                              in_.substr(kHeaderSize, h.payload_len)};
      in_.erase(0, kHeaderSize + h.payload_len);
    }
    if (stash_.count(id)) continue;

    char buf[64 * 1024];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      in_.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    const api::Status status =
        n == 0 ? api::Status::Unavailable("server closed the connection")
        : (errno == EAGAIN || errno == EWOULDBLOCK)
            ? api::Status::Unavailable("receive timed out")
            : transport_error("recv() failed");
    close();
    return status;
  }
}

// ---- send_* ----------------------------------------------------------------

api::Result<std::uint64_t> Client::send_search(
    std::optional<api::EngineConfig> cfg, std::uint64_t deadline_us) {
  Writer w;
  encode_search_request(cfg, &w);
  return send_frame(FrameType::kSearch, deadline_us, w.bytes());
}

api::Result<std::uint64_t> Client::send_predict_latency(
    const api::Arch& arch, std::uint64_t deadline_us) {
  Writer w;
  encode_predict_request(arch, &w);
  return send_frame(FrameType::kPredictLatency, deadline_us, w.bytes());
}

api::Result<std::uint64_t> Client::send_predict_batch(
    const std::vector<api::Arch>& archs, std::uint64_t deadline_us) {
  Writer w;
  encode_predict_batch_request(archs, &w);
  return send_frame(FrameType::kPredictBatch, deadline_us, w.bytes());
}

api::Result<std::uint64_t> Client::send_profile(const api::Arch& arch,
                                                std::uint64_t deadline_us) {
  Writer w;
  encode_predict_request(arch, &w);
  return send_frame(FrameType::kProfile, deadline_us, w.bytes());
}

api::Result<std::uint64_t> Client::send_profile_baseline(
    const std::string& name, const std::optional<api::Workload>& workload,
    std::uint64_t deadline_us) {
  Writer w;
  encode_profile_baseline_request(name, workload, &w);
  return send_frame(FrameType::kProfileBaseline, deadline_us, w.bytes());
}

api::Result<std::uint64_t> Client::send_train_baseline(
    const std::string& name, std::uint64_t deadline_us) {
  Writer w;
  encode_train_baseline_request(name, &w);
  return send_frame(FrameType::kTrainBaseline, deadline_us, w.bytes());
}

// ---- wait_* ----------------------------------------------------------------

namespace {

template <typename T, typename DecodeFn>
api::Result<T> wait_typed(api::Result<std::string> payload, DecodeFn decode) {
  if (!payload.ok()) return payload.status();
  Reader r(payload.value());
  api::Result<T> out = api::Status::Internal("uninitialised reply");
  if (!decode_reply<T>(&r, decode, &out))
    return api::Status::Unavailable("malformed reply payload");
  return out;
}

}  // namespace

api::Result<api::SearchReport> Client::wait_search(std::uint64_t id) {
  return wait_typed<api::SearchReport>(
      recv_reply(id, FrameType::kSearch),
      [](Reader* r, api::SearchReport* out) {
        return decode_search_report(r, out);
      });
}

api::Result<api::LatencyReport> Client::wait_predict_latency(
    std::uint64_t id) {
  return wait_typed<api::LatencyReport>(
      recv_reply(id, FrameType::kPredictLatency),
      [](Reader* r, api::LatencyReport* out) {
        return decode_latency_report(r, out);
      });
}

api::Result<std::vector<api::LatencyReport>> Client::wait_predict_batch(
    std::uint64_t id) {
  api::Result<std::string> payload =
      recv_reply(id, FrameType::kPredictBatch);
  if (!payload.ok()) return payload.status();
  Reader r(payload.value());
  std::vector<api::Result<api::LatencyReport>> elements;
  if (!decode_predict_batch_reply(&r, &elements))
    return api::Status::Unavailable("malformed reply payload");
  std::vector<api::LatencyReport> out;
  out.reserve(elements.size());
  for (const api::Result<api::LatencyReport>& e : elements) {
    if (!e.ok()) return e.status();  // first failure fails the batch verb
    out.push_back(e.value());
  }
  return out;
}

api::Result<api::ProfileReport> Client::wait_profile(std::uint64_t id) {
  return wait_typed<api::ProfileReport>(
      recv_reply(id, FrameType::kProfile),
      [](Reader* r, api::ProfileReport* out) {
        return decode_profile_report(r, out);
      });
}

api::Result<api::ProfileReport> Client::wait_profile_baseline(
    std::uint64_t id) {
  return wait_typed<api::ProfileReport>(
      recv_reply(id, FrameType::kProfileBaseline),
      [](Reader* r, api::ProfileReport* out) {
        return decode_profile_report(r, out);
      });
}

api::Result<api::TrainReport> Client::wait_train_baseline(std::uint64_t id) {
  return wait_typed<api::TrainReport>(
      recv_reply(id, FrameType::kTrainBaseline),
      [](Reader* r, api::TrainReport* out) {
        return decode_train_report(r, out);
      });
}

// ---- blocking verbs --------------------------------------------------------

api::Result<api::SearchReport> Client::search(
    std::optional<api::EngineConfig> cfg, std::uint64_t deadline_us) {
  api::Result<std::uint64_t> id = send_search(std::move(cfg), deadline_us);
  if (!id.ok()) return id.status();
  return wait_search(id.value());
}

api::Result<api::LatencyReport> Client::predict_latency(
    const api::Arch& arch, std::uint64_t deadline_us) {
  api::Result<std::uint64_t> id = send_predict_latency(arch, deadline_us);
  if (!id.ok()) return id.status();
  return wait_predict_latency(id.value());
}

api::Result<std::vector<api::LatencyReport>> Client::predict_batch(
    const std::vector<api::Arch>& archs, std::uint64_t deadline_us) {
  api::Result<std::uint64_t> id = send_predict_batch(archs, deadline_us);
  if (!id.ok()) return id.status();
  return wait_predict_batch(id.value());
}

api::Result<api::ProfileReport> Client::profile(const api::Arch& arch,
                                                std::uint64_t deadline_us) {
  api::Result<std::uint64_t> id = send_profile(arch, deadline_us);
  if (!id.ok()) return id.status();
  return wait_profile(id.value());
}

api::Result<api::ProfileReport> Client::profile_baseline(
    const std::string& name, const std::optional<api::Workload>& workload,
    std::uint64_t deadline_us) {
  api::Result<std::uint64_t> id =
      send_profile_baseline(name, workload, deadline_us);
  if (!id.ok()) return id.status();
  return wait_profile_baseline(id.value());
}

api::Result<api::TrainReport> Client::train_baseline(
    const std::string& name, std::uint64_t deadline_us) {
  api::Result<std::uint64_t> id = send_train_baseline(name, deadline_us);
  if (!id.ok()) return id.status();
  return wait_train_baseline(id.value());
}

}  // namespace hg::net
