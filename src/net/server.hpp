// server.hpp — hg::net::Server, the TCP front end of a serve::Service.
//
// One server owns one serve::Service and a single poll-based I/O thread
// that multiplexes any number of client connections onto it:
//
//   accept ──► read frames ──► decode request ──► Service::submit(...)
//                                                    │  (worker pool)
//   write replies ◄── encode Result ◄── future ready ◄┘ (self-pipe wakeup)
//
// Per-request semantics, end to end:
//   * Deadlines: a frame's deadline_us (queue-time budget from receipt)
//     becomes RequestOptions::deadline; a request still queued when it
//     expires is answered DEADLINE_EXCEEDED without running.
//   * Back-pressure: the service's bounded queue
//     (ServiceConfig::max_queue_depth, wired from ServerConfig) refuses
//     over-limit submissions with an immediate RESOURCE_EXHAUSTED reply
//     instead of growing without bound.
//   * Cancellation: every connection carries one cancel flag, shared by
//     its in-flight requests; a disconnect sets it, so that connection's
//     still-queued requests are abandoned (CANCELLED, never run) instead
//     of occupying workers for a peer that is gone.
//   * Robustness: malformed payloads are answered INVALID_ARGUMENT;
//     unframeable input (bad magic / version / oversized length) drops
//     the connection. Neither crashes nor over-reads (tests/test_net.cpp
//     fuzzes this).
//
// The I/O thread never blocks on the service: submissions return
// std::futures, completion wakes the poll loop through a self-pipe
// (RequestOptions::notify), and replies go out in completion order —
// pipelined request ids may be answered out of order by design.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "api/status.hpp"
#include "net/transport.hpp"
#include "serve/service.hpp"

namespace hg::net {

struct ServerConfig {
  /// Listen address. Default loopback only; "0.0.0.0" exposes the fleet.
  std::string host = "127.0.0.1";
  /// 0 = ephemeral port chosen by the kernel (read it back via port()).
  std::uint16_t port = 0;
  /// Accepted connections beyond this are refused at accept time.
  std::int64_t max_connections = 64;
  /// The owned service (worker pool, coalescing, bounded queue, window).
  /// max_queue_depth here is the server's back-pressure bound; the
  /// default bounds it at 1024 instead of serve's unbounded default,
  /// because a socket front end must not let a fast peer grow the queue
  /// without limit.
  serve::ServiceConfig service{.max_queue_depth = 1024};
  /// retry_after_us hint attached to refused-before-running replies
  /// (queue-full RESOURCE_EXHAUSTED sheds, drain-time UNAVAILABLE
  /// refusals): "come back in about this long". Clients floor their
  /// retry backoff at it. 0 disables the hint.
  std::uint64_t shed_retry_after_us = 5'000;
  /// Test seam: wraps every accepted connection's transport (see
  /// net/chaos.hpp). Empty = use the socket directly.
  TransportWrap wrap_transport;
};

/// Net-level counters (monotone; snapshot via Server::net_stats()).
/// Service-level counters live in Server::service()->stats().
struct NetStats {
  std::int64_t connections_opened = 0;
  std::int64_t connections_closed = 0;
  std::int64_t connections_refused = 0;   // over max_connections
  std::int64_t frames_received = 0;       // well-framed requests
  std::int64_t frames_rejected = 0;       // INVALID_ARGUMENT replies
  std::int64_t connections_dropped = 0;   // unframeable input
  std::int64_t replies_sent = 0;
  // Reply bodies over kMaxPayloadBytes, answered RESOURCE_EXHAUSTED
  // instead of framed (kept separate from frames_rejected: these come
  // from healthy traffic, not malformed input).
  std::int64_t oversized_replies = 0;
  // Peers speaking another protocol version, answered with one
  // best-effort FAILED_PRECONDITION farewell and dropped.
  std::int64_t version_mismatches = 0;
};

class Server {
 public:
  /// Build the service from `cfg` (fitting the predictor when configured)
  /// and start listening. Binding failures surface as UNAVAILABLE.
  static api::Result<std::shared_ptr<Server>> create(
      const api::EngineConfig& cfg, const ServerConfig& server_cfg = {});

  /// Same, on an existing shared context (fleet startup).
  static api::Result<std::shared_ptr<Server>> create(
      const api::EngineConfig& cfg, std::shared_ptr<api::EvalContext> ctx,
      const ServerConfig& server_cfg = {});

  /// stop() + join; drains the owned service.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The port actually bound (resolves port 0).
  std::uint16_t port() const { return port_; }

  /// Stop accepting, close every connection (cancelling its queued
  /// requests), drain and shut down the service. Idempotent.
  void stop();

  /// Graceful wind-down, non-blocking and idempotent: close the listen
  /// socket (new connects are refused), refuse new frames with
  /// UNAVAILABLE + retry_after_us, finish every request already
  /// admitted, flush its reply, then half-close each connection and wait
  /// for the peer's FIN. Pings still answer (state = draining): a
  /// connection is only FIN'd after it has been answered during the
  /// drain, so an idle peer keeps its connection until it next speaks
  /// (it gets that answer, then the FIN). Call stop() afterwards to join
  /// the I/O thread and the workers.
  void drain();
  bool draining() const;

  NetStats net_stats() const;
  const std::shared_ptr<serve::Service>& service() const { return service_; }

 private:
  struct Impl;

  Server() = default;

  std::shared_ptr<serve::Service> service_;
  std::unique_ptr<Impl> impl_;
  std::uint16_t port_ = 0;
};

}  // namespace hg::net
