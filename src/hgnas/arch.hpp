// arch.hpp — the fine-grained operation-based GNN design space (paper §III-B).
//
// HGNAS decouples the message-passing paradigm into *positions*, each
// holding one basic operation (Connect / Aggregate / Combine / Sample) with
// operation-specific function attributes (Table I):
//
//   Connect   : skip-connect | identity
//   Aggregate : aggregator {sum, min, max, mean} x message type
//               {source, target, rel, distance, source||rel, target||rel, full}
//   Combine   : output dimension {8, 16, 32, 64, 128, 256}
//   Sample    : KNN | Random
//
// An `Arch` assigns a gene (operation + functions) to every position. The
// hierarchical space splits this into a Function Space (attribute choices,
// shared across the upper / lower half of positions in stage 1) and an
// Operation Space (the 4^N operation-type assignment searched in stage 2).
//
// Execution semantics (mirrored exactly by the cost-model lowering):
//  * Features flow h_0 = input points -> positions in order -> head.
//  * Sample rebuilds the neighbour graph from *current* features; adjacent
//    Sample ops with no feature change in between are merged (Fig. 10 note).
//  * Aggregate lazily triggers an initial KNN on raw points if no Sample
//    has run yet (point-cloud GNNs always need a first graph).
//  * Aggregate changes the channel count to message_dim(msg, d) and carries
//    no weights in the finalised network (supernet alignment layers are
//    disposed of, per §III-B).
//  * Combine is Linear(d -> c) + BatchNorm + LeakyReLU.
//  * Skip-connect adds the features recorded at the previous Connect (or
//    the input) when channel counts match, and degrades to identity
//    otherwise (the finalised network carries no alignment weights).
//  * Head: global max pool -> MLP(d -> 128 -> classes).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "gnn/gnn.hpp"
#include "hw/device.hpp"
#include "tensor/rng.hpp"

namespace hg::hgnas {

enum class OpType : std::int64_t { Connect = 0, Aggregate, Combine, Sample };
constexpr std::int64_t kNumOpTypes = 4;

enum class ConnectFunc : std::int64_t { SkipConnect = 0, Identity };
constexpr std::int64_t kNumConnectFuncs = 2;

enum class AggrType : std::int64_t { Sum = 0, Min, Max, Mean };
constexpr std::int64_t kNumAggrTypes = 4;

enum class SampleFunc : std::int64_t { Knn = 0, Random };
constexpr std::int64_t kNumSampleFuncs = 2;

/// Combine output dimensions from Table I.
constexpr std::array<std::int64_t, 6> kCombineDims = {8, 16, 32, 64, 128, 256};
constexpr std::int64_t kNumCombineDims = 6;

std::string op_type_name(OpType t);
std::string connect_func_name(ConnectFunc f);
std::string aggr_type_name(AggrType a);
std::string sample_func_name(SampleFunc s);

Reduce to_reduce(AggrType a);

/// Function attributes for one position (only the fields matching the
/// position's OpType are meaningful, but all are always populated so the
/// same struct serves as the shared per-half function set of stage 1).
struct FunctionSet {
  ConnectFunc connect = ConnectFunc::Identity;
  AggrType aggr = AggrType::Max;
  gnn::MessageType msg = gnn::MessageType::TargetRel;
  std::int64_t combine_dim_idx = 3;  // index into kCombineDims
  SampleFunc sample = SampleFunc::Knn;

  std::int64_t combine_dim() const {
    return kCombineDims[static_cast<std::size_t>(combine_dim_idx)];
  }
  bool operator==(const FunctionSet&) const = default;
};

/// One position's gene: operation type + its functions.
struct PositionGene {
  OpType op = OpType::Connect;
  FunctionSet fn;

  bool operator==(const PositionGene&) const = default;
};

/// A complete architecture in the fine-grained design space.
struct Arch {
  std::vector<PositionGene> genes;

  std::int64_t num_positions() const {
    return static_cast<std::int64_t>(genes.size());
  }
  bool operator==(const Arch&) const = default;

  /// Stable content hash (population dedup).
  std::uint64_t hash() const;
};

/// Workload description an architecture runs against (drives cost lowering
/// and graph-property features for the predictor).
struct Workload {
  std::int64_t num_points = 1024;
  std::int64_t k = 20;          // neighbours per sample op
  std::int64_t num_classes = 40;
  std::int64_t in_dim = 3;
};

/// Static configuration of the design space.
struct SpaceConfig {
  std::int64_t num_positions = 12;
  std::int64_t head_hidden = 128;
};

/// dead[i] is true when a Sample at position i can never influence the
/// output because no Aggregate follows it — such samples are eliminated
/// during execution and lowering (together with the adjacent-sample
/// merging of Fig. 10).
std::vector<bool> dead_sample_mask(const Arch& arch);

/// Which graph-construction work each position really performs at run
/// time, after dead-sample elimination and adjacent-sample merging. Used
/// by the trace lowering and exposed to the latency predictor as node
/// features (a merged sample is free; the first Aggregate without a prior
/// Sample pays for an implicit KNN).
struct ExecMarks {
  std::vector<bool> sample_executes;      // Sample positions that run
  std::vector<bool> implicit_initial_knn; // Aggregates that lazily build
                                          // the first graph
};

ExecMarks compute_exec_marks(const Arch& arch);

/// Channel count after each position when the arch executes on `w`
/// (size num_positions + 1; [0] is the input dim). Needed by the supernet,
/// the materialised model, the lowering and the predictor alike.
std::vector<std::int64_t> channel_flow(const Arch& arch, const Workload& w);

/// Lower an architecture to a hardware trace (see execution semantics at
/// the top of this header, including adjacent-sample merging and the lazy
/// initial KNN).
hw::Trace lower_to_trace(const Arch& arch, const Workload& w);

/// Model weight footprint (MB, fp32) of the finalised network.
double arch_param_mb(const Arch& arch, const Workload& w);

/// Multi-line human-readable visualisation (Fig. 10 style): one line per
/// *effective* op (merged samples collapsed), annotated with functions.
std::string visualize(const Arch& arch, const Workload& w);

// ---- sampling & genetic operators ------------------------------------------

/// Canonical form: function attributes that the position's operation does
/// not use are reset to defaults. Two architectures with equal canonical
/// forms execute identically; the EA dedups on this, and text
/// serialisation round-trips exactly on canonical archs.
Arch canonicalize(const Arch& arch);

/// Uniformly random architecture over the full fine-grained space.
Arch random_arch(const SpaceConfig& cfg, Rng& rng);

/// Uniformly random function set.
FunctionSet random_functions(Rng& rng);

/// Random operation assignment with the two per-half function sets stamped
/// on (stage-2 sampling in the hierarchical space).
Arch random_arch_with_functions(const SpaceConfig& cfg,
                                const FunctionSet& upper,
                                const FunctionSet& lower, Rng& rng);

/// Stamp shared per-half functions onto an existing operation assignment.
void apply_functions(Arch& arch, const FunctionSet& upper,
                     const FunctionSet& lower);

/// Mutate: each position's operation resampled with prob `p_op`; each
/// function attribute resampled with prob `p_fn` (full space).
Arch mutate(const Arch& parent, double p_op, double p_fn, Rng& rng);

/// Mutate operations only (stage 2; functions preserved).
Arch mutate_ops(const Arch& parent, double p_op, Rng& rng);

/// Uniform crossover per position.
Arch crossover(const Arch& a, const Arch& b, Rng& rng);

/// Mutate one shared function set (stage 1).
FunctionSet mutate_functions(const FunctionSet& parent, double p, Rng& rng);

/// Number of architectures in the operation space (4^N) and in the full
/// fine-grained space ((sum of per-op function counts)^N = 38^N), as
/// log10 values to avoid overflow. Verifies the paper's §III-C claim that
/// function sharing shrinks exploration from ~1e12 to ~1.7e7 candidates.
double log10_operation_space_size(const SpaceConfig& cfg);
double log10_full_space_size(const SpaceConfig& cfg);

}  // namespace hg::hgnas
