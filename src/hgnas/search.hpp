// search.hpp — HGNAS design-space exploration (paper §III-C, Alg. 1).
//
// Multi-stage hierarchical strategy over a weight-sharing supernet:
//   Stage 1 (Function Search): evolutionary search over the two shared
//     function sets (upper half / lower half of positions), objective =
//     supernet validation accuracy.
//   Stage 2 (Operation Search): re-initialise and pre-train the supernet
//     with the winning functions fixed, then evolutionary search over the
//     4^N operation assignment with the multi-objective score of Eq. (3):
//         F(C) = 0                       if lat >= C
//                a * acc - b * lat_norm  if lat <  C
//     where lat_norm = latency / latency_scale_ms (the caller passes the
//     DGCNN latency of the target device, making a : b dimensionless like
//     the paper's Fig. 7 sweep).
//
// Latency comes from a pluggable evaluator: either the GNN performance
// predictor (milliseconds per query) or simulated on-device measurement
// (seconds to minutes per query) — the Fig. 9(a) ablation. A simulated
// wall clock accumulates evaluator + training costs so that search-progress
// curves can be plotted against "GPU hours" even though the whole pipeline
// runs scaled-down on one CPU core.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/annotations.hpp"
#include "core/stepwise.hpp"
#include "obs/trace.hpp"
#include "hgnas/arch.hpp"
#include "hgnas/pareto.hpp"
#include "hgnas/supernet.hpp"
#include "hw/device.hpp"
#include "pointcloud/pointcloud.hpp"

namespace hg::hgnas {

/// One latency query against an architecture.
struct LatencyEval {
  double latency_ms = 0.0;
  double cost_s = 0.0;  // simulated wall-clock cost of obtaining the number
  bool oom = false;
  /// Peak memory, when the evaluator can report it (the analytical oracle
  /// and simulated measurement can; a pure latency predictor reports 0 =
  /// unknown and the memory constraint is then not enforced).
  double peak_memory_mb = 0.0;
};

using LatencyFn = std::function<LatencyEval(const Arch&)>;

/// Latency evaluator backed by simulated on-device measurement (deploy +
/// runs; see hw::Device::measure). Throws if the device does not support
/// online measurement (Jetson TX2 / Raspberry Pi in the paper).
LatencyFn make_measurement_evaluator(const hw::Device& device,
                                     const Workload& workload,
                                     std::uint64_t seed);

/// Latency evaluator backed by the deterministic analytical model with
/// zero query cost — the oracle upper bound used in tests.
LatencyFn make_oracle_evaluator(const hw::Device& device,
                                const Workload& workload);

/// One fully-scored candidate: Eq. (3) fitness plus the raw measurements it
/// was computed from. Shared vocabulary of the memo cache, the Pareto
/// tracker and the scoring pipeline.
struct ScoredCandidate {
  Arch arch;
  double fitness = 0.0;
  double acc = 0.0;
  double latency_ms = 0.0;      // infinity when the evaluator reports OOM
  double raw_latency_ms = 0.0;  // as measured, even for OOM candidates
  bool is_feasible = false;
};

/// Thread-safe memo of candidate scores keyed by the serialized canonical
/// genome. An entry is only meaningful for one scoring context — evaluator,
/// objective parameters and supernet weights — so the cache carries a
/// `scope` string and self-clears when a search opens it under a different
/// scope (the supernet weight version is part of the scope, which is what
/// invalidates entries whenever any search retrains).
///
/// Concurrency story (several searches on one shared cache, as
/// api::EvalContext and serve::Service do):
///  * Entries live in hash-sharded maps, each behind its own mutex, so
///    concurrent lookups/inserts on different genomes never contend.
///  * lookup/insert carry the caller's scope and are no-ops under a scope
///    mismatch: a search that computed a score under old supernet weights
///    can never serve it into — or pollute — a cache another search has
///    since re-scoped. The scope itself sits behind a shared_mutex
///    (shared for the hot lookup/insert path, exclusive in open_scope).
///  * save()/load() persist the current scope plus every entry to a
///    line-oriented text file, so repeated runs whose scope still matches
///    (same evaluator tag, objective and supernet weight version) start
///    warm (api::EngineConfig::eval_cache_path wires this up).
///
/// HgnasSearch owns a private one by default; hand the same instance to
/// several searches (api::EvalContext does) and revisited genomes are never
/// re-evaluated across runs as long as the scope matches.
class EvalCache {
 public:
  /// Clears every shard when `scope` differs from the stored scope.
  void open_scope(const std::string& scope);
  /// True (and fills *out) only when `key` is present AND `scope` is the
  /// currently open scope.
  bool lookup(const std::string& scope, const std::string& key,
              ScoredCandidate* out) const;
  /// Records the score; silently dropped when `scope` is no longer the
  /// open scope (the entry would be invalid there).
  void insert(const std::string& scope, const std::string& key,
              const ScoredCandidate& score);
  void clear();
  std::int64_t size() const;
  std::string scope() const;

  /// Serialize scope + entries to `path` (overwrite). False on I/O
  /// failure. Stored architectures ride the arch v1 text format, which
  /// normalises unused function attributes — a reloaded entry's arch is
  /// the canonical form of the one inserted (execution-identical; see
  /// hgnas::canonicalize).
  bool save(const std::string& path) const;
  /// Replace contents from a save() file. False (cache left empty) when the
  /// file is missing or malformed — a cold start, not an error.
  bool load(const std::string& path);

 private:
  static constexpr std::size_t kNumShards = 16;
  struct Shard {
    mutable core::Mutex mutex;
    std::unordered_map<std::string, ScoredCandidate> map
        HG_GUARDED_BY(mutex);
  };
  Shard& shard_for(const std::string& key) const;

  // Shared (reader) on the hot lookup/insert path, exclusive (writer) in
  // open_scope/clear/load. Shard mutexes nest inside it.
  mutable core::SharedMutex scope_mutex_;
  std::string scope_ HG_GUARDED_BY(scope_mutex_);
  mutable std::array<Shard, kNumShards> shards_;
};

struct SearchConfig {
  SpaceConfig space;
  Workload workload;  // lowering target (point count, k, classes)

  std::int64_t population = 20;   // paper: population size 20
  std::int64_t parents = 10;      // elites kept for reproduction
  std::int64_t iterations = 50;   // EA iterations per stage (paper: 1000)
  double crossover_fraction = 0.5;  // offspring from crossover vs mutation
  double mutation_prob = 0.2;       // per-gene resample probability

  double alpha = 1.0;  // accuracy weight (Eq. 1/3)
  double beta = 0.5;   // latency weight
  // Hardware constraint set C (paper Eq. 2 lists "inference latency, model
  // size, etc."). A candidate violating any set bound scores 0; an unset
  // bound is unconstrained.
  std::optional<double> latency_constraint_ms;
  std::optional<double> memory_constraint_mb;
  std::optional<double> size_constraint_mb;
  double latency_scale_ms = 1.0;  // normaliser for the latency term

  std::int64_t eval_val_samples = 40;  // clouds per supernet accuracy probe
  std::int64_t function_paths_per_eval = 3;  // op paths averaged in stage 1

  std::int64_t stage1_epochs = 2;  // supernet warmup epochs (paper: 50)
  std::int64_t stage2_epochs = 4;  // supernet pretrain epochs (paper: 500)
  std::int64_t batch_size = 8;
  /// When false, the supernet is assumed already trained by the caller and
  /// all warmup / re-init / pretrain phases are skipped (lets one supernet
  /// serve several per-device searches, as training is device-independent).
  bool train_supernet = true;

  // Simulated cost book-keeping (V100-equivalents, see DESIGN.md):
  double sim_train_s_per_sample = 0.004;  // supernet fwd+bwd per cloud
  double sim_eval_s_per_sample = 0.0015;  // supernet inference per cloud

  /// Memoise candidate scores on the serialized canonical genome for the
  /// duration of one search run, so a re-visited candidate is never
  /// re-evaluated (hits/misses are reported in SearchResult). Disable only
  /// for A/B experiments; with a deterministic evaluator and the pool
  /// active (num_threads > 1, where accuracy-probe RNG streams are derived
  /// from the genome) disabling it reproduces the exact same search.
  bool use_eval_cache = true;

  /// Identity of the latency evaluator, folded into the memo-cache scope so
  /// a cache shared across searches never serves scores produced by a
  /// different evaluator. Empty is fine for a search that owns its cache.
  std::string evaluator_tag;
};

/// (simulated time, best objective so far) — one point per EA iteration.
struct SearchEvent {
  double sim_time_s = 0.0;
  double best_objective = 0.0;
};

struct SearchResult {
  Arch best_arch;
  FunctionSet upper, lower;
  double best_objective = 0.0;
  double best_supernet_acc = 0.0;
  double best_latency_ms = 0.0;
  std::vector<SearchEvent> history;  // stage-2 (or one-stage) progress
  double total_sim_time_s = 0.0;
  std::int64_t latency_queries = 0;
  std::int64_t accuracy_probes = 0;
  /// Memo-cache traffic of the scoring pipeline (a "miss" is one full
  /// candidate evaluation: latency query + accuracy probe when feasible).
  std::int64_t eval_cache_hits = 0;
  std::int64_t eval_cache_misses = 0;
  /// Accuracy–latency Pareto front over every feasible candidate this run
  /// scored (Fig. 6), ascending latency. Maintained in-loop by a
  /// ParetoTracker — identical to pareto_front() over the full scoring log.
  std::vector<ParetoPoint> frontier;
  /// Feasible candidates the frontier was distilled from.
  std::int64_t frontier_candidates = 0;
};

/// Which run_* pipeline a stepwise run drives (the three strategies below
/// map 1:1 onto run_multistage / run_onestage / run_random).
enum class SearchStrategy { kMultistage, kOnestage, kRandom };

/// Where a stepwise run currently stands. Updated in place before every
/// suspension, so a scheduler can read it between step() calls; to_text()
/// is the serializable one-line view (progress frames, logs, checkpoints).
struct SearchProgress {
  enum class Phase {
    kIdle,      // created, step() not called yet
    kWarmup,    // stage-0 / onestage / random supernet training epochs
    kStage1,    // function-set EA generations
    kPretrain,  // between-stages re-init + pretrain epochs
    kStage2,    // operation EA generations (also the onestage EA)
    kSampling,  // random-strategy budget chunks
    kDone,
  };
  Phase phase = Phase::kIdle;
  /// Steps completed so far (epochs + generations + chunks, cumulative).
  std::int64_t steps = 0;
  double sim_time_s = 0.0;
  /// Best Eq. (3) objective seen so far; meaningful once has_best is set
  /// (the EA phases report it from their first generation on).
  double best_objective = 0.0;
  bool has_best = false;

  std::string to_text() const;
};

class HgnasSearch {
 public:
  /// The supernet and dataset are borrowed; they must outlive the search.
  /// `shared_cache` (optional, borrowed) replaces the search's private memo
  /// cache so several searches can pool their candidate scores — see
  /// EvalCache for the scope rules that keep that sound.
  HgnasSearch(SuperNet& supernet, const pointcloud::Dataset& data,
              SearchConfig cfg, LatencyFn latency,
              EvalCache* shared_cache = nullptr);

  /// Full Alg. 1: function search, supernet re-init + pretrain, operation
  /// search.
  SearchResult run_multistage(Rng& rng);

  /// Ablation baseline (Fig. 9b): one joint EA over operations and
  /// per-position functions in the full fine-grained space.
  SearchResult run_onestage(Rng& rng);

  /// Random-sampling baseline at the same latency-query budget as the EA
  /// (population + iterations * population/2 candidates), with the same
  /// supernet training schedule, feasibility gate and Eq. (3) objective —
  /// the "random search" row of ablation tables. Unlike the EA, random
  /// sampling re-visits genomes, so this is where the memo cache pays off.
  SearchResult run_random(Rng& rng);

  /// The stepwise form of the three strategies: returns a coroutine whose
  /// step() advances ONE generation (or training epoch, or random-sampling
  /// chunk). The monolithic run_* entry points drive this same coroutine to
  /// completion, so stepped and monolithic runs are bit-identical by
  /// construction for every strategy. `*out` holds the result once the
  /// stepper reports done; `*prog` is refreshed before every suspension.
  /// `rng`, `out`, `prog` and this search must outlive the stepper.
  core::Stepper run_stepwise(SearchStrategy strategy, Rng& rng,
                             SearchResult* out, SearchProgress* prog);

  /// Eq. (3) objective for given accuracy / latency.
  double objective(double acc, double latency_ms, bool oom) const;

  /// All hardware constraints of C (latency / peak memory / model size).
  bool feasible(const LatencyEval& lat, double size_mb) const;

  const SearchConfig& config() const { return cfg_; }

 private:
  using Scored = ScoredCandidate;

  /// One deduplicated candidate queued for batch evaluation. `key` is the
  /// serialized canonical genome (the memo-cache key); `hash` seeds the
  /// candidate's private accuracy-probe RNG stream.
  struct PendingEval {
    Arch arch;
    std::string key;
    std::uint64_t hash = 0;
  };

  /// Latency gate shared by the serial and batch scoring paths (paper
  /// §III-C: only candidates that meet the hardware constraint are
  /// evaluated for accuracy). Fills the latency/feasibility side of `s`
  /// and returns true when the accuracy probe must run.
  bool gate_candidate(const Arch& arch, Scored& s);

  /// Evaluate Eq. (3) for an arch: latency gate first (predictor is cheap,
  /// accuracy probes are not).
  Scored score_candidate(const Arch& arch, Rng& rng);

  /// Serial-path scoring through the memo cache (shared rng — this is the
  /// historical bit-for-bit sequential pipeline when hits do not occur).
  Scored score_cached(const Arch& arch, const std::string& key, Rng& rng);

  /// Batch-path scoring: the latency gate, clock and counters run serially
  /// in batch order; feasible candidates' accuracy probes fan out across
  /// the pool, each with an RNG derived from (acc_seed, genome hash) so the
  /// result is independent of scheduling and of the thread count.
  std::vector<Scored> score_batch(const std::vector<PendingEval>& batch,
                                  std::uint64_t acc_seed);

  double supernet_accuracy(const Arch& arch, Rng& rng);
  void advance_clock(double seconds) { sim_time_s_ += seconds; }
  void reset_run_state();

  /// Scope under which this run's cache entries are valid: evaluator tag,
  /// objective parameters, probe budget and the supernet weight version.
  std::string cache_scope() const;
  /// Open the cache for scoring (clears it on a scope change) — called once
  /// per run, after all supernet training is done.
  void open_cache();
  /// Feed every feasible (accuracy-probed) score into the Pareto tracker.
  void record_frontier(const Scored& s);
  void finalize_result(SearchResult& result);

  // The strategy pipelines as coroutines (one suspension per epoch /
  // generation / chunk). FunctionSets are taken by value: the caller's
  // copies may die before the last step(). `out`/`prog` are borrowed and
  // must outlive the frame (run_stepwise documents this for callers).
  core::Stepper co_run_multistage(Rng& rng, SearchResult* out,
                                  SearchProgress* prog);
  core::Stepper co_run_onestage(Rng& rng, SearchResult* out,
                                SearchProgress* prog);
  core::Stepper co_run_random(Rng& rng, SearchResult* out,
                              SearchProgress* prog);
  core::Stepper co_evolve(FunctionSet upper, FunctionSet lower,
                          bool full_space, Rng& rng, SearchResult* out,
                          SearchProgress* prog);

  SuperNet& supernet_;
  const pointcloud::Dataset& data_;
  SearchConfig cfg_;
  LatencyFn latency_;
  double sim_time_s_ = 0.0;
  std::int64_t latency_queries_ = 0;
  std::int64_t accuracy_probes_ = 0;

  // Memo cache: serialized canonical genome -> score. `cache_` points at
  // either the private cache below or a caller-shared one; scope checks
  // (see EvalCache) invalidate entries whenever the supernet weights, the
  // evaluator or the objective change. Hit/miss counters are per run.
  // `run_scope_` is this run's scope snapshot (set by open_cache) — every
  // lookup/insert carries it so a shared cache re-scoped by another search
  // mid-run turns this run's traffic into misses instead of corruption.
  EvalCache own_cache_;
  EvalCache* cache_ = nullptr;
  std::string run_scope_;
  std::int64_t cache_hits_ = 0;
  std::int64_t cache_misses_ = 0;
  // In-loop Pareto bookkeeping over every feasible candidate scored.
  ParetoTracker frontier_;
};

/// A whole search run, advanced one generation at a time — the scheduling
/// unit serve::Service preempts under its exclusive time slice. Owns its
/// HgnasSearch (RNG draws in flight, population, Pareto tracker and cache
/// handles all live in the coroutine frame / the search), so a run parked
/// between steps carries its full state. The constructor validates the
/// config exactly like HgnasSearch (throws std::invalid_argument).
///
/// Not copyable or movable: the coroutine frame pins the addresses of the
/// members it references.
class SearchStepper {
 public:
  /// Borrows supernet / data / rng / shared_cache with the same lifetime
  /// rules as HgnasSearch — all must outlive the stepper.
  SearchStepper(SuperNet& supernet, const pointcloud::Dataset& data,
                SearchConfig cfg, LatencyFn latency, SearchStrategy strategy,
                Rng& rng, EvalCache* shared_cache = nullptr)
      : search_(supernet, data, std::move(cfg), std::move(latency),
                shared_cache),
        stepper_(search_.run_stepwise(strategy, rng, &result_, &progress_)) {}
  SearchStepper(const SearchStepper&) = delete;
  SearchStepper& operator=(const SearchStepper&) = delete;

  /// One generation (or epoch, or sampling chunk). False once finished;
  /// rethrows anything the pipeline threw, from the step that hit it.
  /// Each step is one trace span named after the phase the step *entered
  /// in* (obs::TraceCollector; free when tracing is off), so a traced
  /// sliced search reads as warmup/stage1/pretrain/stage2 segments.
  bool step() {
    HG_TRACE_SCOPE(phase_span_name(progress_.phase), "search");
    return stepper_.step();
  }
  bool done() const { return stepper_.done(); }

  const SearchProgress& progress() const { return progress_; }

  /// The finished run's result — identical to what the matching run_*
  /// call would have returned. Valid once done().
  SearchResult take_result() { return std::move(result_); }

 private:
  static const char* phase_span_name(SearchProgress::Phase phase) {
    switch (phase) {
      case SearchProgress::Phase::kWarmup: return "search.warmup";
      case SearchProgress::Phase::kStage1: return "search.stage1";
      case SearchProgress::Phase::kPretrain: return "search.pretrain";
      case SearchProgress::Phase::kStage2: return "search.stage2";
      case SearchProgress::Phase::kSampling: return "search.sampling";
      case SearchProgress::Phase::kIdle:
      case SearchProgress::Phase::kDone: break;
    }
    return "search.step";
  }

  HgnasSearch search_;  // declared before stepper_: the frame refers to it
  SearchResult result_;
  SearchProgress progress_;
  core::Stepper stepper_;
};

}  // namespace hg::hgnas
