#include "hgnas/supernet.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/parallel.hpp"

namespace hg::hgnas {

namespace {

void check(bool cond, const std::string& msg) {
  if (!cond) throw std::invalid_argument("SuperNet: " + msg);
}

}  // namespace

SuperNet::SuperNet(const SpaceConfig& space, const SupernetConfig& cfg,
                   Rng& rng)
    : space_(space), cfg_(cfg) {
  check(space_.num_positions > 0, "num_positions must be positive");
  check(cfg_.hidden > 0, "hidden width must be positive");
  const std::int64_t H = cfg_.hidden;
  input_proj_ = std::make_unique<nn::Linear>(3, H, rng);
  const auto P = static_cast<std::size_t>(space_.num_positions);
  combine_in_.resize(P);
  combine_out_.resize(P);
  aggr_align_.resize(P);
  for (std::size_t p = 0; p < P; ++p) {
    combine_in_[p].resize(static_cast<std::size_t>(kNumCombineDims));
    combine_out_[p].resize(static_cast<std::size_t>(kNumCombineDims));
    for (std::size_t c = 0; c < static_cast<std::size_t>(kNumCombineDims);
         ++c) {
      const std::int64_t dim = kCombineDims[c];
      combine_in_[p][c] = std::make_unique<nn::Linear>(H, dim, rng);
      combine_out_[p][c] = std::make_unique<nn::Linear>(dim, H, rng);
    }
    aggr_align_[p].resize(static_cast<std::size_t>(gnn::kNumMessageTypes));
    for (std::size_t m = 0; m < static_cast<std::size_t>(gnn::kNumMessageTypes);
         ++m) {
      const std::int64_t md =
          gnn::message_dim(static_cast<gnn::MessageType>(m), H);
      aggr_align_[p][m] = std::make_unique<nn::Linear>(md, H, rng);
    }
  }
  head1_ = std::make_unique<nn::Linear>(H, cfg_.head_hidden, rng);
  head2_ = std::make_unique<nn::Linear>(cfg_.head_hidden, cfg_.num_classes,
                                        rng);
}

Tensor SuperNet::forward(const Arch& arch, const Tensor& points, Rng& rng) {
  check(arch.num_positions() == space_.num_positions,
        "architecture has " + std::to_string(arch.num_positions()) +
            " positions, supernet expects " +
            std::to_string(space_.num_positions));
  check(points.dim() == 2 && points.shape()[1] == 3,
        "points must be [n, 3]");
  const std::int64_t n = points.shape()[0];
  check(n > 1, "need at least 2 points");
  const std::int64_t kk = std::min<std::int64_t>(cfg_.k, n - 1);

  Tensor h = leaky_relu(input_proj_->forward(points), 0.2f);
  Tensor skip = h;
  graph::EdgeList g;
  bool graph_built = false, graph_fresh = false;
  const std::vector<bool> dead = dead_sample_mask(arch);

  auto ensure_graph = [&]() {
    if (!graph_built) {
      g = graph::knn_graph(points.data(), n, kk);
      graph_built = true;
      graph_fresh = true;
    }
  };

  for (std::size_t p = 0; p < arch.genes.size(); ++p) {
    const auto& gene = arch.genes[p];
    switch (gene.op) {
      case OpType::Sample:
        if (!graph_fresh && !dead[p]) {
          if (gene.fn.sample == SampleFunc::Knn) {
            // Detached features: graph construction is non-differentiable.
            Tensor feats = h.detach();
            g = graph::knn_graph_features(feats.data(), n, feats.shape()[1],
                                          kk);
          } else {
            g = graph::random_graph(n, kk, rng);
          }
          graph_built = true;
          graph_fresh = true;
        }
        break;
      case OpType::Aggregate: {
        ensure_graph();
        Tensor agg = gnn::aggregate(h, g, gene.fn.msg,
                                    to_reduce(gene.fn.aggr));
        h = aggr_align_[p][static_cast<std::size_t>(gene.fn.msg)]->forward(
            agg);
        graph_fresh = false;
        break;
      }
      case OpType::Combine: {
        const auto c = static_cast<std::size_t>(gene.fn.combine_dim_idx);
        Tensor z = leaky_relu(combine_in_[p][c]->forward(h), 0.2f);
        h = combine_out_[p][c]->forward(z);
        graph_fresh = false;
        break;
      }
      case OpType::Connect:
        if (gene.fn.connect == ConnectFunc::SkipConnect) {
          h = add(h, skip);
          graph_fresh = false;
        }
        skip = h;
        break;
    }
  }

  Tensor pooled = gnn::global_max_pool(h);
  Tensor z = leaky_relu(head1_->forward(pooled), 0.2f);
  return head2_->forward(z);
}

std::vector<Tensor> SuperNet::parameters() const {
  std::vector<Tensor> out;
  auto push = [&out](const nn::Linear& l) {
    for (auto& p : l.parameters()) out.push_back(p);
  };
  push(*input_proj_);
  for (std::size_t p = 0; p < combine_in_.size(); ++p) {
    for (auto& l : combine_in_[p]) push(*l);
    for (auto& l : combine_out_[p]) push(*l);
    for (auto& l : aggr_align_[p]) push(*l);
  }
  push(*head1_);
  push(*head2_);
  return out;
}

void SuperNet::set_training(bool training) { Module::set_training(training); }

double SuperNet::train_epoch(const std::vector<pointcloud::Sample>& train,
                             const std::function<Arch(Rng&)>& sampler,
                             Adam& opt, std::int64_t batch_size, Rng& rng) {
  check(!train.empty(), "train_epoch: empty split");
  check(batch_size > 0, "train_epoch: batch_size must be positive");
  weight_version_.fetch_add(1, std::memory_order_acq_rel);
  set_training(true);
  auto order = pointcloud::shuffled_indices(train.size(), rng);
  double loss_sum = 0.0;

  if (core::num_threads() > 1) {
    // Batch path: the samples inside one gradient-accumulation batch are
    // independent until their gradients meet in the optimiser step. Paths
    // and per-sample RNG seeds come serially off the main stream, the taped
    // forward passes fan out across the pool (forward only reads the shared
    // weights), then the backward passes replay serially in sample order so
    // gradient accumulation order — and hence the result — is the same for
    // every pool width.
    struct PendingSample {
      std::size_t index = 0;      // into `train`
      Arch path;
      std::uint64_t seed = 0;     // private stream for Random-sample ops
      Tensor loss;
    };
    std::size_t oi = 0;
    while (oi < order.size()) {
      const std::size_t n = std::min<std::size_t>(
          static_cast<std::size_t>(batch_size), order.size() - oi);
      std::vector<PendingSample> batch(n);
      for (std::size_t i = 0; i < n; ++i) {
        batch[i].index = order[oi + i];
        batch[i].path = sampler(rng);
        batch[i].seed = rng.next();
      }
      core::parallel_invoke(static_cast<std::int64_t>(n), [&](std::int64_t i) {
        PendingSample& ps = batch[static_cast<std::size_t>(i)];
        const auto& s = train[ps.index];
        Rng sample_rng(ps.seed);
        Tensor pts = pointcloud::Dataset::to_tensor(s);
        Tensor logits = forward(ps.path, pts, sample_rng);
        const std::int64_t label[1] = {s.label};
        ps.loss = cross_entropy(logits, label);
      });
      for (PendingSample& ps : batch) {
        ps.loss.backward();
        loss_sum += ps.loss.item();
      }
      opt.step();
      opt.zero_grad();
      oi += n;
    }
    return loss_sum / static_cast<double>(train.size());
  }

  std::int64_t in_batch = 0;
  for (std::size_t oi = 0; oi < order.size(); ++oi) {
    const auto& s = train[order[oi]];
    const Arch path = sampler(rng);  // uniform single-path sampling
    Tensor pts = pointcloud::Dataset::to_tensor(s);
    Tensor logits = forward(path, pts, rng);
    const std::int64_t label[1] = {s.label};
    Tensor loss = cross_entropy(logits, label);
    loss.backward();
    loss_sum += loss.item();
    ++in_batch;
    if (in_batch == batch_size || oi + 1 == order.size()) {
      opt.step();
      opt.zero_grad();
      in_batch = 0;
    }
  }
  return loss_sum / static_cast<double>(train.size());
}

double SuperNet::evaluate(const Arch& arch,
                          const std::vector<pointcloud::Sample>& val,
                          std::int64_t max_samples, Rng& rng) {
  // Checked before the mode toggle: a throw below would otherwise leave
  // the supernet stuck in inference mode for callers that catch it.
  check(!val.empty(), "evaluate: empty split");
  set_training(false);
  const double acc = evaluate_concurrent(arch, val, max_samples, rng);
  set_training(true);
  return acc;
}

double SuperNet::evaluate_concurrent(const Arch& arch,
                                     const std::vector<pointcloud::Sample>& val,
                                     std::int64_t max_samples, Rng& rng) {
  check(!val.empty(), "evaluate: empty split");
  NoGradGuard ng;
  const std::size_t count = std::min<std::size_t>(
      val.size(), static_cast<std::size_t>(
                      max_samples > 0 ? max_samples
                                      : static_cast<std::int64_t>(val.size())));
  std::size_t correct = 0;
  for (std::size_t i = 0; i < count; ++i) {
    Tensor pts = pointcloud::Dataset::to_tensor(val[i]);
    Tensor logits = forward(arch, pts, rng);
    if (argmax_rows(logits)[0] == val[i].label) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(count);
}

void SuperNet::reinitialize(Rng& rng) {
  weight_version_.fetch_add(1, std::memory_order_acq_rel);
  for (auto& p : parameters()) {
    // Re-draw Kaiming weights / zero biases in place, preserving handles
    // held by optimisers created afterwards.
    auto data = p.data();
    if (p.dim() == 2) {
      const float stddev =
          std::sqrt(2.f / static_cast<float>(p.shape()[0]));
      for (auto& v : data) v = rng.normal(0.f, stddev);
    } else {
      for (auto& v : data) v = 0.f;
    }
    p.zero_grad();
  }
}

}  // namespace hg::hgnas
