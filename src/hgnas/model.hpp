// model.hpp — materialised (finalised) network for an architecture.
//
// Builds the real, deployable network for an `Arch`: natural channel flow
// from the 3-D input, no supernet alignment layers (they are "disposed of
// in the finalized architecture", §III-B). Used for final training and for
// the accuracy columns of Table II / Fig. 6.
#pragma once

#include <memory>
#include <vector>

#include "core/stepwise.hpp"
#include "hgnas/arch.hpp"
#include "nn/nn.hpp"
#include "pointcloud/pointcloud.hpp"

namespace hg::hgnas {

/// Execution-ready network for one architecture.
///
/// forward() runs one point cloud [n, 3] -> logits [1, classes], mirroring
/// lower_to_trace() exactly: lazy initial KNN, adjacent-sample merging
/// (naturally free: re-sampling unchanged features yields the same graph),
/// weightless aggregation, Linear+BN+LeakyReLU combines, and skip-connects
/// that degrade to identity on channel mismatch.
class GnnModel final : public nn::Module {
 public:
  GnnModel(Arch arch, Workload workload, Rng& rng);

  /// points: [n, 3] tensor of one cloud. `rng` drives Random-sample ops.
  Tensor forward(const Tensor& points, Rng& rng);

  std::vector<Tensor> parameters() const override;
  void set_training(bool training) override;

  const Arch& arch() const { return arch_; }
  const Workload& workload() const { return workload_; }
  double param_mb() const;

 private:
  Arch arch_;
  Workload workload_;
  // One entry per position; null when the position carries no weights.
  std::vector<std::unique_ptr<nn::Linear>> combine_lin_;
  std::vector<std::unique_ptr<nn::BatchNorm1d>> combine_bn_;
  std::unique_ptr<nn::Linear> head1_, head2_;
};

/// Training / evaluation results for a materialised model.
struct EvalResult {
  double overall_acc = 0.0;   // OA
  double balanced_acc = 0.0;  // mAcc
  double mean_loss = 0.0;
};

struct TrainConfig {
  std::int64_t epochs = 30;
  std::int64_t batch_size = 8;  // gradient accumulation over clouds
  float lr = 1e-3f;
  float weight_decay = 1e-4f;
  bool cosine_schedule = true;
  std::int64_t log_every = 0;  // 0: silent
};

/// Train on the dataset's train split with Adam; returns final test metrics.
EvalResult train_model(GnnModel& model, const pointcloud::Dataset& data,
                       const TrainConfig& cfg, Rng& rng);

/// The same loop with one suspension per epoch; the final step runs the
/// test-set evaluation into *out. train_model drives this coroutine to
/// completion, so stepped and monolithic runs are bit-identical (the
/// step / total_steps cosine-schedule bookkeeping lives in the frame).
/// `cfg` is taken by value: the caller's copy may die before the last step.
core::Stepper train_model_stepwise(GnnModel& model,
                                   const pointcloud::Dataset& data,
                                   TrainConfig cfg, Rng& rng, EvalResult* out);

/// Evaluate (eval mode, no grad) on a set of samples.
EvalResult evaluate_model(GnnModel& model,
                          const std::vector<pointcloud::Sample>& samples,
                          std::int64_t num_classes, Rng& rng);

}  // namespace hg::hgnas
