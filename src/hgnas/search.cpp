#include "hgnas/search.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace hg::hgnas {

namespace {

void check(bool cond, const std::string& msg) {
  if (!cond) throw std::invalid_argument("HgnasSearch: " + msg);
}

}  // namespace

LatencyFn make_measurement_evaluator(const hw::Device& device,
                                     const Workload& workload,
                                     std::uint64_t seed) {
  check(device.spec().supports_online_measurement,
        "device " + device.name() +
            " does not support online measurement (paper §IV-D); use the "
            "predictor instead");
  auto rng = std::make_shared<Rng>(seed);
  return [&device, workload, rng](const Arch& arch) -> LatencyEval {
    const hw::Trace trace = lower_to_trace(arch, workload);
    const hw::Measurement m = device.measure(trace, *rng);
    return {m.latency_ms, m.wall_clock_s, m.oom, m.peak_memory_mb};
  };
}

LatencyFn make_oracle_evaluator(const hw::Device& device,
                                const Workload& workload) {
  return [&device, workload](const Arch& arch) -> LatencyEval {
    const hw::Trace trace = lower_to_trace(arch, workload);
    return {device.latency_ms(trace), 0.0, device.would_oom(trace),
            device.peak_memory_mb(trace)};
  };
}

HgnasSearch::HgnasSearch(SuperNet& supernet, const pointcloud::Dataset& data,
                         SearchConfig cfg, LatencyFn latency)
    : supernet_(supernet), data_(data), cfg_(std::move(cfg)),
      latency_(std::move(latency)) {
  check(static_cast<bool>(latency_), "latency evaluator required");
  check(cfg_.population >= 2, "population must be >= 2");
  check(cfg_.parents >= 1 && cfg_.parents <= cfg_.population,
        "parents must be in [1, population]");
  check(cfg_.iterations >= 1, "iterations must be >= 1");
  check(cfg_.latency_scale_ms > 0.0, "latency_scale_ms must be positive");
  check(!cfg_.latency_constraint_ms || *cfg_.latency_constraint_ms > 0.0,
        "latency_constraint_ms must be positive when set");
  check(!cfg_.memory_constraint_mb || *cfg_.memory_constraint_mb > 0.0,
        "memory_constraint_mb must be positive when set");
  check(!cfg_.size_constraint_mb || *cfg_.size_constraint_mb > 0.0,
        "size_constraint_mb must be positive when set");
  check(cfg_.space.num_positions == supernet.space().num_positions,
        "search space and supernet disagree on position count");
}

double HgnasSearch::objective(double acc, double latency_ms, bool oom) const {
  if (oom || (cfg_.latency_constraint_ms &&
              latency_ms >= *cfg_.latency_constraint_ms))
    return 0.0;  // Eq. (3)
  return cfg_.alpha * acc - cfg_.beta * latency_ms / cfg_.latency_scale_ms;
}

bool HgnasSearch::feasible(const LatencyEval& lat, double size_mb) const {
  if (lat.oom) return false;
  if (cfg_.latency_constraint_ms &&
      lat.latency_ms >= *cfg_.latency_constraint_ms)
    return false;
  if (cfg_.memory_constraint_mb && lat.peak_memory_mb > 0.0 &&
      lat.peak_memory_mb >= *cfg_.memory_constraint_mb)
    return false;
  if (cfg_.size_constraint_mb && size_mb >= *cfg_.size_constraint_mb)
    return false;
  return true;
}

double HgnasSearch::supernet_accuracy(const Arch& arch, Rng& rng) {
  ++accuracy_probes_;
  const std::int64_t probes =
      std::min<std::int64_t>(cfg_.eval_val_samples,
                             static_cast<std::int64_t>(data_.test().size()));
  advance_clock(static_cast<double>(probes) * cfg_.sim_eval_s_per_sample);
  return supernet_.evaluate(arch, data_.test(), probes, rng);
}

HgnasSearch::Scored HgnasSearch::score_candidate(const Arch& arch, Rng& rng) {
  Scored s;
  s.arch = arch;
  ++latency_queries_;
  const LatencyEval lat = latency_(arch);
  advance_clock(lat.cost_s);
  s.latency_ms = lat.oom ? std::numeric_limits<double>::infinity()
                         : lat.latency_ms;
  if (!feasible(lat, arch_param_mb(arch, cfg_.workload))) {
    s.fitness = 0.0;  // Eq. (3): accuracy never probed when infeasible
    s.is_feasible = false;
    return s;
  }
  s.acc = supernet_accuracy(arch, rng);
  s.fitness = objective(s.acc, s.latency_ms, false);
  s.is_feasible = true;
  return s;
}

SearchResult HgnasSearch::evolve_operations(const FunctionSet& upper,
                                            const FunctionSet& lower,
                                            bool full_space, Rng& rng) {
  SearchResult result;
  result.upper = upper;
  result.lower = lower;

  auto sample_candidate = [&](Rng& r) {
    return full_space ? random_arch(cfg_.space, r)
                      : random_arch_with_functions(cfg_.space, upper, lower,
                                                   r);
  };

  std::vector<Scored> population;
  std::unordered_set<std::uint64_t> seen;
  std::unordered_map<std::uint64_t, Scored> cache;

  auto admit = [&](const Arch& a) -> bool {
    // Dedup on the canonical form: genomes differing only in unused
    // function attributes execute identically and must not both consume
    // evaluation budget.
    const auto h = canonicalize(a).hash();
    if (!seen.insert(h).second) return false;
    auto it = cache.find(h);
    Scored s = (it != cache.end()) ? it->second : score_candidate(a, rng);
    cache.emplace(h, s);
    population.push_back(std::move(s));
    return true;
  };

  while (static_cast<std::int64_t>(population.size()) < cfg_.population)
    admit(sample_candidate(rng));

  // Ranking: any feasible candidate beats any infeasible one (Eq. (3)
  // scores feasible candidates, which can legitimately go negative when
  // beta is large — that must still outrank a constraint violation). Among
  // infeasible candidates, lower latency first, so selection pressure
  // points toward feasibility even when the whole population violates C.
  auto by_fitness = [](const Scored& a, const Scored& b) {
    if (a.is_feasible != b.is_feasible) return a.is_feasible;
    if (a.fitness != b.fitness) return a.fitness > b.fitness;
    return a.latency_ms < b.latency_ms;
  };

  for (std::int64_t t = 0; t < cfg_.iterations; ++t) {
    std::sort(population.begin(), population.end(), by_fitness);
    population.resize(static_cast<std::size_t>(cfg_.population));

    result.history.push_back({sim_time_s_, population.front().fitness});

    // Offspring: crossover between random elites, or mutation of an elite.
    const auto n_par = static_cast<std::size_t>(
        std::min<std::int64_t>(cfg_.parents,
                               static_cast<std::int64_t>(population.size())));
    std::int64_t produced = 0;
    std::int64_t attempts = 0;
    const std::int64_t offspring_target = cfg_.population / 2;
    while (produced < offspring_target && attempts < offspring_target * 10) {
      ++attempts;
      const auto& p1 =
          population[static_cast<std::size_t>(rng.uniform_int(n_par))].arch;
      Arch child;
      if (rng.bernoulli(cfg_.crossover_fraction)) {
        const auto& p2 =
            population[static_cast<std::size_t>(rng.uniform_int(n_par))].arch;
        child = crossover(p1, p2, rng);
        child = full_space ? mutate(child, cfg_.mutation_prob / 2,
                                    cfg_.mutation_prob / 2, rng)
                           : mutate_ops(child, cfg_.mutation_prob / 2, rng);
      } else {
        child = full_space
                    ? mutate(p1, cfg_.mutation_prob, cfg_.mutation_prob, rng)
                    : mutate_ops(p1, cfg_.mutation_prob, rng);
      }
      if (!full_space) apply_functions(child, upper, lower);
      if (admit(child)) ++produced;
    }
    // Keep diversity if mutation stalled on duplicates.
    while (produced < offspring_target) {
      if (admit(sample_candidate(rng))) ++produced;
    }
  }

  std::sort(population.begin(), population.end(), by_fitness);
  const Scored& best = population.front();
  result.best_arch = best.arch;
  result.best_objective = best.fitness;
  result.best_supernet_acc = best.acc;
  result.best_latency_ms = best.latency_ms;
  result.history.push_back({sim_time_s_, best.fitness});
  result.total_sim_time_s = sim_time_s_;
  result.latency_queries = latency_queries_;
  result.accuracy_probes = accuracy_probes_;
  return result;
}

SearchResult HgnasSearch::run_multistage(Rng& rng) {
  sim_time_s_ = 0.0;
  latency_queries_ = 0;
  accuracy_probes_ = 0;

  // ---- Stage 0: supernet warmup over the full space -----------------------
  if (cfg_.train_supernet) {
    Adam opt(supernet_.parameters(), 1e-3f);
    auto sampler = [this](Rng& r) { return random_arch(cfg_.space, r); };
    for (std::int64_t e = 0; e < cfg_.stage1_epochs; ++e) {
      supernet_.train_epoch(data_.train(), sampler, opt, cfg_.batch_size,
                            rng);
      advance_clock(static_cast<double>(data_.train().size()) *
                    cfg_.sim_train_s_per_sample);
    }
  }

  // ---- Stage 1: function search (objective: supernet accuracy) -----------
  struct ScoredFn {
    FunctionSet upper, lower;
    double fitness = 0.0;
  };
  auto eval_pair = [&](const FunctionSet& up, const FunctionSet& lo) {
    double acc = 0.0;
    for (std::int64_t i = 0; i < cfg_.function_paths_per_eval; ++i) {
      const Arch probe =
          random_arch_with_functions(cfg_.space, up, lo, rng);
      acc += supernet_accuracy(probe, rng);
    }
    return acc / static_cast<double>(cfg_.function_paths_per_eval);
  };

  std::vector<ScoredFn> fn_pop;
  for (std::int64_t i = 0; i < cfg_.population; ++i) {
    ScoredFn s{random_functions(rng), random_functions(rng), 0.0};
    s.fitness = eval_pair(s.upper, s.lower);
    fn_pop.push_back(std::move(s));
  }
  auto by_fit = [](const ScoredFn& a, const ScoredFn& b) {
    return a.fitness > b.fitness;
  };
  for (std::int64_t t = 0; t < cfg_.iterations; ++t) {
    std::sort(fn_pop.begin(), fn_pop.end(), by_fit);
    fn_pop.resize(static_cast<std::size_t>(cfg_.population));
    const auto n_par = static_cast<std::size_t>(std::min<std::int64_t>(
        cfg_.parents, static_cast<std::int64_t>(fn_pop.size())));
    for (std::int64_t c = 0; c < cfg_.population / 2; ++c) {
      const auto& p1 =
          fn_pop[static_cast<std::size_t>(rng.uniform_int(n_par))];
      ScoredFn child;
      if (rng.bernoulli(cfg_.crossover_fraction)) {
        const auto& p2 =
            fn_pop[static_cast<std::size_t>(rng.uniform_int(n_par))];
        child.upper = rng.bernoulli(0.5) ? p1.upper : p2.upper;
        child.lower = rng.bernoulli(0.5) ? p1.lower : p2.lower;
        child.upper = mutate_functions(child.upper, cfg_.mutation_prob / 2,
                                       rng);
        child.lower = mutate_functions(child.lower, cfg_.mutation_prob / 2,
                                       rng);
      } else {
        child.upper = mutate_functions(p1.upper, cfg_.mutation_prob, rng);
        child.lower = mutate_functions(p1.lower, cfg_.mutation_prob, rng);
      }
      child.fitness = eval_pair(child.upper, child.lower);
      fn_pop.push_back(std::move(child));
    }
  }
  std::sort(fn_pop.begin(), fn_pop.end(), by_fit);
  const FunctionSet upper = fn_pop.front().upper;
  const FunctionSet lower = fn_pop.front().lower;

  // ---- Between stages: re-init and pre-train with functions fixed --------
  if (cfg_.train_supernet) {
    supernet_.reinitialize(rng);
    Adam opt(supernet_.parameters(), 1e-3f);
    auto sampler = [this, &upper, &lower](Rng& r) {
      return random_arch_with_functions(cfg_.space, upper, lower, r);
    };
    for (std::int64_t e = 0; e < cfg_.stage2_epochs; ++e) {
      supernet_.train_epoch(data_.train(), sampler, opt, cfg_.batch_size,
                            rng);
      advance_clock(static_cast<double>(data_.train().size()) *
                    cfg_.sim_train_s_per_sample);
    }
  }

  // ---- Stage 2: multi-objective operation search --------------------------
  return evolve_operations(upper, lower, /*full_space=*/false, rng);
}

SearchResult HgnasSearch::run_onestage(Rng& rng) {
  sim_time_s_ = 0.0;
  latency_queries_ = 0;
  accuracy_probes_ = 0;

  // Same training budget as the multi-stage pipeline, then one joint EA
  // over the full fine-grained space.
  if (cfg_.train_supernet) {
    Adam opt(supernet_.parameters(), 1e-3f);
    auto sampler = [this](Rng& r) { return random_arch(cfg_.space, r); };
    for (std::int64_t e = 0; e < cfg_.stage1_epochs + cfg_.stage2_epochs;
         ++e) {
      supernet_.train_epoch(data_.train(), sampler, opt, cfg_.batch_size,
                            rng);
      advance_clock(static_cast<double>(data_.train().size()) *
                    cfg_.sim_train_s_per_sample);
    }
  }
  return evolve_operations(FunctionSet{}, FunctionSet{}, /*full_space=*/true,
                           rng);
}

}  // namespace hg::hgnas
