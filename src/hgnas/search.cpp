#include "hgnas/search.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "core/parallel.hpp"
#include "hgnas/serialize_arch.hpp"

namespace hg::hgnas {

namespace {

void check(bool cond, const std::string& msg) {
  if (!cond) throw std::invalid_argument("HgnasSearch: " + msg);
}

/// Candidate evaluation fans out across the pool when it is active. The
/// serial path (1 thread) reproduces the historical sequential pipeline —
/// shared RNG stream and all — bit for bit.
bool batch_eval_enabled() { return core::num_threads() > 1; }

/// Holds the supernet in inference mode for the duration of a concurrent
/// evaluation batch, restoring training mode even when a probe throws.
class EvalModeGuard {
 public:
  explicit EvalModeGuard(SuperNet& net) : net_(net) {
    net_.set_training(false);
  }
  ~EvalModeGuard() { net_.set_training(true); }
  EvalModeGuard(const EvalModeGuard&) = delete;
  EvalModeGuard& operator=(const EvalModeGuard&) = delete;

 private:
  SuperNet& net_;
};

}  // namespace

EvalCache::Shard& EvalCache::shard_for(const std::string& key) const {
  return shards_[std::hash<std::string>{}(key) % kNumShards];
}

void EvalCache::open_scope(const std::string& scope) {
  core::WriterLock lock(scope_mutex_);
  if (scope_ == scope) return;
  for (Shard& s : shards_) {
    core::MutexLock shard_lock(s.mutex);
    s.map.clear();
  }
  scope_ = scope;
}

bool EvalCache::lookup(const std::string& scope, const std::string& key,
                       ScoredCandidate* out) const {
  core::ReaderLock lock(scope_mutex_);
  if (scope_ != scope) return false;
  Shard& s = shard_for(key);
  core::MutexLock shard_lock(s.mutex);
  const auto it = s.map.find(key);
  if (it == s.map.end()) return false;
  *out = it->second;
  return true;
}

void EvalCache::insert(const std::string& scope, const std::string& key,
                       const ScoredCandidate& score) {
  core::ReaderLock lock(scope_mutex_);
  if (scope_ != scope) return;  // stale writer: the entry is invalid here
  Shard& s = shard_for(key);
  core::MutexLock shard_lock(s.mutex);
  s.map.emplace(key, score);
}

void EvalCache::clear() {
  core::WriterLock lock(scope_mutex_);
  for (Shard& s : shards_) {
    core::MutexLock shard_lock(s.mutex);
    s.map.clear();
  }
  scope_.clear();
}

std::int64_t EvalCache::size() const {
  core::ReaderLock lock(scope_mutex_);
  std::int64_t n = 0;
  for (Shard& s : shards_) {
    core::MutexLock shard_lock(s.mutex);
    n += static_cast<std::int64_t>(s.map.size());
  }
  return n;
}

std::string EvalCache::scope() const {
  core::ReaderLock lock(scope_mutex_);
  return scope_;
}

// ---- persistence -----------------------------------------------------------
//
// Line-oriented text, reusing the arch v1 text format for genomes:
//
//   hgnas-evalcache v1
//   scope <byte count>
//   <scope, verbatim>
//   entries <count>
//   entry <fitness> <acc> <latency_ms> <raw_latency_ms> <is_feasible>
//   key <byte count>
//   <serialized canonical genome, verbatim>
//   arch <byte count>
//   <serialized stored arch, verbatim>
//   ... (per entry)

namespace {

void write_block(std::ostream& os, const char* tag, const std::string& body) {
  os << tag << ' ' << body.size() << '\n' << body << '\n';
}

// Corrupt size fields (a negative count wraps through num_get to 2^64-1)
// must not drive resize()/reserve() into std::length_error — any size
// beyond this is not a cache this code ever wrote.
constexpr std::size_t kMaxBlockBytes = std::size_t{1} << 30;

/// Reads "<tag> <n>\n<n bytes>\n" written by write_block. False on any
/// mismatch (malformed file).
bool read_block(std::istream& is, const char* tag, std::string* body) {
  std::string seen;
  std::size_t n = 0;
  if (!(is >> seen >> n) || seen != tag) return false;
  if (n > kMaxBlockBytes) return false;
  if (is.get() != '\n') return false;
  body->resize(n);
  if (n > 0 && !is.read(body->data(), static_cast<std::streamsize>(n)))
    return false;
  return is.get() == '\n';
}

}  // namespace

bool EvalCache::save(const std::string& path) const {
  core::ReaderLock lock(scope_mutex_);
  // Atomic commit, mirroring load()'s all-or-nothing parse: write a
  // sibling temp file and rename it over `path`, so a crash mid-save
  // leaves the previous cache intact instead of a truncated file another
  // service is about to load. rename(2) is atomic within a filesystem,
  // and the temp sits next to the target to stay on the same one.
  const std::string tmp_path = path + ".tmp";
  std::ofstream os(tmp_path, std::ios::trunc);
  if (!os) return false;
  std::vector<std::pair<std::string, ScoredCandidate>> entries;
  for (Shard& s : shards_) {
    core::MutexLock shard_lock(s.mutex);
    for (const auto& [key, score] : s.map) entries.emplace_back(key, score);
  }
  // Deterministic file contents regardless of hash order (reviewable
  // artifacts, stable diffs next to the BENCH_*.json they sit with).
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  os << "hgnas-evalcache v1\n";
  write_block(os, "scope", scope_);
  os << "entries " << entries.size() << '\n';
  os.precision(17);
  for (const auto& [key, score] : entries) {
    // latency_ms is +inf exactly for OOM candidates; iostreams cannot
    // round-trip "inf", so encode it as -1 (real latencies are positive).
    const double lat_enc =
        std::isinf(score.latency_ms) ? -1.0 : score.latency_ms;
    os << "entry " << score.fitness << ' ' << score.acc << ' ' << lat_enc
       << ' ' << score.raw_latency_ms << ' ' << (score.is_feasible ? 1 : 0)
       << '\n';
    write_block(os, "key", key);
    write_block(os, "arch", arch_to_text(score.arch));
  }
  os.close();
  if (!os) {
    std::remove(tmp_path.c_str());
    return false;
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return false;
  }
  return true;
}

bool EvalCache::load(const std::string& path) {
  core::WriterLock lock(scope_mutex_);
  for (Shard& s : shards_) {
    core::MutexLock shard_lock(s.mutex);
    s.map.clear();
  }
  scope_.clear();

  // Parse everything first, commit only a fully-valid file: a truncated or
  // corrupt cache degrades to a cold start, never a half-filled one.
  std::ifstream is(path);
  if (!is) return false;
  std::string magic, version;
  if (!(is >> magic >> version) || magic != "hgnas-evalcache" ||
      version != "v1")
    return false;
  if (is.get() != '\n') return false;
  std::string scope;
  if (!read_block(is, "scope", &scope)) return false;
  std::string tag;
  std::size_t count = 0;
  if (!(is >> tag >> count) || tag != "entries") return false;
  if (count > kMaxBlockBytes) return false;  // corrupt / wrapped count
  // No reserve(count): a corrupt count must fail at the first missing
  // entry, not allocate for entries that are not in the file.
  std::vector<std::pair<std::string, ScoredCandidate>> entries;
  for (std::size_t i = 0; i < count; ++i) {
    ScoredCandidate score;
    double lat_enc = 0.0;
    int feasible = 0;
    if (!(is >> tag >> score.fitness >> score.acc >> lat_enc >>
          score.raw_latency_ms >> feasible) ||
        tag != "entry")
      return false;
    if (is.get() != '\n') return false;
    score.latency_ms =
        lat_enc < 0.0 ? std::numeric_limits<double>::infinity() : lat_enc;
    score.is_feasible = feasible != 0;
    std::string key, arch_text;
    if (!read_block(is, "key", &key) || !read_block(is, "arch", &arch_text))
      return false;
    try {
      score.arch = arch_from_text(arch_text);
    } catch (const std::exception&) {
      return false;
    }
    entries.emplace_back(std::move(key), std::move(score));
  }

  for (auto& [key, score] : entries) {
    Shard& s = shard_for(key);
    core::MutexLock shard_lock(s.mutex);
    s.map.emplace(std::move(key), std::move(score));
  }
  scope_ = std::move(scope);
  return true;
}

LatencyFn make_measurement_evaluator(const hw::Device& device,
                                     const Workload& workload,
                                     std::uint64_t seed) {
  check(device.spec().supports_online_measurement,
        "device " + device.name() +
            " does not support online measurement (paper §IV-D); use the "
            "predictor instead");
  auto rng = std::make_shared<Rng>(seed);
  return [&device, workload, rng](const Arch& arch) -> LatencyEval {
    const hw::Trace trace = lower_to_trace(arch, workload);
    const hw::Measurement m = device.measure(trace, *rng);
    return {m.latency_ms, m.wall_clock_s, m.oom, m.peak_memory_mb};
  };
}

LatencyFn make_oracle_evaluator(const hw::Device& device,
                                const Workload& workload) {
  return [&device, workload](const Arch& arch) -> LatencyEval {
    const hw::Trace trace = lower_to_trace(arch, workload);
    return {device.latency_ms(trace), 0.0, device.would_oom(trace),
            device.peak_memory_mb(trace)};
  };
}

HgnasSearch::HgnasSearch(SuperNet& supernet, const pointcloud::Dataset& data,
                         SearchConfig cfg, LatencyFn latency,
                         EvalCache* shared_cache)
    : supernet_(supernet), data_(data), cfg_(std::move(cfg)),
      latency_(std::move(latency)),
      cache_(shared_cache != nullptr ? shared_cache : &own_cache_) {
  check(static_cast<bool>(latency_), "latency evaluator required");
  check(cfg_.population >= 2, "population must be >= 2");
  check(cfg_.parents >= 1 && cfg_.parents <= cfg_.population,
        "parents must be in [1, population]");
  check(cfg_.iterations >= 1, "iterations must be >= 1");
  check(cfg_.latency_scale_ms > 0.0, "latency_scale_ms must be positive");
  check(!cfg_.latency_constraint_ms || *cfg_.latency_constraint_ms > 0.0,
        "latency_constraint_ms must be positive when set");
  check(!cfg_.memory_constraint_mb || *cfg_.memory_constraint_mb > 0.0,
        "memory_constraint_mb must be positive when set");
  check(!cfg_.size_constraint_mb || *cfg_.size_constraint_mb > 0.0,
        "size_constraint_mb must be positive when set");
  check(cfg_.space.num_positions == supernet.space().num_positions,
        "search space and supernet disagree on position count");
}

double HgnasSearch::objective(double acc, double latency_ms, bool oom) const {
  if (oom || (cfg_.latency_constraint_ms &&
              latency_ms >= *cfg_.latency_constraint_ms))
    return 0.0;  // Eq. (3)
  return cfg_.alpha * acc - cfg_.beta * latency_ms / cfg_.latency_scale_ms;
}

bool HgnasSearch::feasible(const LatencyEval& lat, double size_mb) const {
  if (lat.oom) return false;
  if (cfg_.latency_constraint_ms &&
      lat.latency_ms >= *cfg_.latency_constraint_ms)
    return false;
  if (cfg_.memory_constraint_mb && lat.peak_memory_mb > 0.0 &&
      lat.peak_memory_mb >= *cfg_.memory_constraint_mb)
    return false;
  if (cfg_.size_constraint_mb && size_mb >= *cfg_.size_constraint_mb)
    return false;
  return true;
}

double HgnasSearch::supernet_accuracy(const Arch& arch, Rng& rng) {
  ++accuracy_probes_;
  const std::int64_t probes =
      std::min<std::int64_t>(cfg_.eval_val_samples,
                             static_cast<std::int64_t>(data_.test().size()));
  advance_clock(static_cast<double>(probes) * cfg_.sim_eval_s_per_sample);
  return supernet_.evaluate(arch, data_.test(), probes, rng);
}

bool HgnasSearch::gate_candidate(const Arch& arch, Scored& s) {
  s.arch = arch;
  ++latency_queries_;
  const LatencyEval lat = latency_(arch);
  advance_clock(lat.cost_s);
  s.latency_ms = lat.oom ? std::numeric_limits<double>::infinity()
                         : lat.latency_ms;
  s.raw_latency_ms = lat.latency_ms;
  if (!feasible(lat, arch_param_mb(arch, cfg_.workload))) {
    s.fitness = 0.0;  // Eq. (3): accuracy never probed when infeasible
    s.is_feasible = false;
    return false;
  }
  return true;
}

HgnasSearch::Scored HgnasSearch::score_candidate(const Arch& arch, Rng& rng) {
  Scored s;
  if (!gate_candidate(arch, s)) return s;
  s.acc = supernet_accuracy(arch, rng);
  s.fitness = objective(s.acc, s.latency_ms, false);
  s.is_feasible = true;
  return s;
}

HgnasSearch::Scored HgnasSearch::score_cached(const Arch& arch,
                                              const std::string& key,
                                              Rng& rng) {
  if (cfg_.use_eval_cache) {
    Scored hit;
    if (cache_->lookup(run_scope_, key, &hit)) {
      ++cache_hits_;
      record_frontier(hit);
      return hit;
    }
  }
  ++cache_misses_;
  Scored s = score_candidate(arch, rng);
  if (cfg_.use_eval_cache) cache_->insert(run_scope_, key, s);
  record_frontier(s);
  return s;
}

std::vector<HgnasSearch::Scored> HgnasSearch::score_batch(
    const std::vector<PendingEval>& batch, std::uint64_t acc_seed) {
  const std::int64_t nb = static_cast<std::int64_t>(batch.size());
  std::vector<Scored> out(static_cast<std::size_t>(nb));
  std::vector<char> fresh(static_cast<std::size_t>(nb), 0);
  std::vector<char> need_acc(static_cast<std::size_t>(nb), 0);
  // Within-batch revisits (the random strategy does not dedup its draws)
  // alias the first occurrence instead of re-evaluating.
  std::vector<std::int64_t> dup_of(static_cast<std::size_t>(nb), -1);
  std::unordered_map<std::string, std::int64_t> first_index;
  const std::int64_t probes =
      std::min<std::int64_t>(cfg_.eval_val_samples,
                             static_cast<std::int64_t>(data_.test().size()));

  // Phase 1, serial in batch order: cache lookups, latency gate, clock and
  // counter bookkeeping (deterministic regardless of the pool).
  for (std::int64_t i = 0; i < nb; ++i) {
    const PendingEval& pe = batch[static_cast<std::size_t>(i)];
    Scored& s = out[static_cast<std::size_t>(i)];
    if (cfg_.use_eval_cache) {
      if (cache_->lookup(run_scope_, pe.key, &s)) {
        ++cache_hits_;
        continue;
      }
      const auto [fit, inserted] = first_index.emplace(pe.key, i);
      if (!inserted) {
        ++cache_hits_;
        dup_of[static_cast<std::size_t>(i)] = fit->second;
        continue;
      }
    }
    ++cache_misses_;
    fresh[static_cast<std::size_t>(i)] = 1;
    if (!gate_candidate(pe.arch, s)) continue;
    need_acc[static_cast<std::size_t>(i)] = 1;
    ++accuracy_probes_;
    advance_clock(static_cast<double>(probes) * cfg_.sim_eval_s_per_sample);
  }

  // Phase 2: the expensive supernet accuracy probes, concurrently. Each
  // candidate owns an RNG derived from its genome, so the outcome does not
  // depend on which worker runs it or on the thread count.
  {
    EvalModeGuard eval_mode(supernet_);
    core::parallel_invoke(nb, [&](std::int64_t i) {
      if (!need_acc[static_cast<std::size_t>(i)]) return;
      Scored& s = out[static_cast<std::size_t>(i)];
      Rng probe_rng(acc_seed ^ batch[static_cast<std::size_t>(i)].hash);
      s.acc = supernet_.evaluate_concurrent(s.arch, data_.test(), probes,
                                            probe_rng);
      s.fitness = objective(s.acc, s.latency_ms, false);
      s.is_feasible = true;
    });
  }

  for (std::int64_t i = 0; i < nb; ++i)
    if (dup_of[static_cast<std::size_t>(i)] >= 0)
      out[static_cast<std::size_t>(i)] = out[static_cast<std::size_t>(
          dup_of[static_cast<std::size_t>(i)])];

  if (cfg_.use_eval_cache) {
    for (std::int64_t i = 0; i < nb; ++i)
      if (fresh[static_cast<std::size_t>(i)])
        cache_->insert(run_scope_, batch[static_cast<std::size_t>(i)].key,
                       out[static_cast<std::size_t>(i)]);
  }
  // Frontier bookkeeping runs serially after the join (the tracker is not
  // thread-safe); revisits are recorded again and deduplicate inside.
  for (const Scored& s : out) record_frontier(s);
  return out;
}

void HgnasSearch::reset_run_state() {
  sim_time_s_ = 0.0;
  latency_queries_ = 0;
  accuracy_probes_ = 0;
  cache_hits_ = 0;
  cache_misses_ = 0;
  frontier_.clear();
  // The memo cache is NOT cleared here: open_cache() re-scopes it when
  // scoring starts, which clears it exactly when the supernet weights, the
  // evaluator or the objective changed since the entries were written —
  // that is what lets searches sharing one cache keep their hits.
}

std::string HgnasSearch::cache_scope() const {
  std::string s = cfg_.evaluator_tag;
  auto field = [&s](double v) {
    s += '|';
    s += std::to_string(v);
  };
  field(cfg_.alpha);
  field(cfg_.beta);
  field(cfg_.latency_constraint_ms.value_or(-1.0));
  field(cfg_.memory_constraint_mb.value_or(-1.0));
  field(cfg_.size_constraint_mb.value_or(-1.0));
  field(cfg_.latency_scale_ms);
  field(static_cast<double>(cfg_.eval_val_samples));
  field(static_cast<double>(cfg_.workload.num_points));
  field(static_cast<double>(cfg_.workload.k));
  field(static_cast<double>(cfg_.workload.num_classes));
  s += "|w";
  s += std::to_string(supernet_.weight_version());
  return s;
}

void HgnasSearch::open_cache() {
  run_scope_ = cache_scope();
  if (cfg_.use_eval_cache) cache_->open_scope(run_scope_);
}

void HgnasSearch::record_frontier(const Scored& s) {
  if (s.is_feasible) frontier_.record(s.arch, s.acc, s.raw_latency_ms);
}

void HgnasSearch::finalize_result(SearchResult& result) {
  result.total_sim_time_s = sim_time_s_;
  result.latency_queries = latency_queries_;
  result.accuracy_probes = accuracy_probes_;
  result.eval_cache_hits = cache_hits_;
  result.eval_cache_misses = cache_misses_;
  result.frontier = frontier_.frontier();
  result.frontier_candidates = frontier_.recorded();
}

// The operation-search EA as a coroutine: one suspension after the initial
// population is scored and one after every generation. The suspensions are
// pure — no computation or RNG draw moves across them — so driving this to
// completion in one go reproduces the historical monolithic loop bit for
// bit. `upper`/`lower` arrive by value: the caller's copies (locals in an
// outer coroutine frame, or temporaries) may die before the last step.
core::Stepper HgnasSearch::co_evolve(FunctionSet upper, FunctionSet lower,
                                     bool full_space, Rng& rng,
                                     SearchResult* out, SearchProgress* prog) {
  *out = SearchResult{};
  SearchResult& result = *out;
  result.upper = upper;
  result.lower = lower;
  open_cache();  // supernet training is done: entries valid from here on

  auto sample_candidate = [&](Rng& r) {
    return full_space ? random_arch(cfg_.space, r)
                      : random_arch_with_functions(cfg_.space, upper, lower,
                                                   r);
  };

  const bool batch_eval = batch_eval_enabled();
  // Drawn up-front (batch path only) so cache hits cannot shift the main
  // stream: every candidate's probe RNG derives from this one seed and its
  // own genome.
  const std::uint64_t acc_seed = batch_eval ? rng.next() : 0;

  std::vector<Scored> population;
  std::unordered_set<std::uint64_t> seen;
  std::vector<PendingEval> pending;

  auto admit = [&](const Arch& a) -> bool {
    // Dedup on the canonical form: genomes differing only in unused
    // function attributes execute identically and must not both consume
    // evaluation budget.
    const Arch canon = canonicalize(a);
    const auto h = canon.hash();
    if (!seen.insert(h).second) return false;
    std::string key = arch_to_text(canon);
    if (batch_eval) {
      pending.push_back(PendingEval{a, std::move(key), h});
    } else {
      population.push_back(score_cached(a, key, rng));
    }
    return true;
  };
  auto admitted = [&] {
    return static_cast<std::int64_t>(population.size() + pending.size());
  };
  // Score the generation's admissions concurrently and append in admit
  // order (no-op on the serial path, which scored inside admit).
  auto flush = [&] {
    if (pending.empty()) return;
    std::vector<Scored> scored = score_batch(pending, acc_seed);
    for (Scored& s : scored) population.push_back(std::move(s));
    pending.clear();
  };

  while (admitted() < cfg_.population) admit(sample_candidate(rng));
  flush();
  prog->sim_time_s = sim_time_s_;
  ++prog->steps;
  co_await std::suspend_always{};

  // Ranking: any feasible candidate beats any infeasible one (Eq. (3)
  // scores feasible candidates, which can legitimately go negative when
  // beta is large — that must still outrank a constraint violation). Among
  // infeasible candidates, lower latency first, so selection pressure
  // points toward feasibility even when the whole population violates C.
  auto by_fitness = [](const Scored& a, const Scored& b) {
    if (a.is_feasible != b.is_feasible) return a.is_feasible;
    if (a.fitness != b.fitness) return a.fitness > b.fitness;
    return a.latency_ms < b.latency_ms;
  };

  for (std::int64_t t = 0; t < cfg_.iterations; ++t) {
    std::sort(population.begin(), population.end(), by_fitness);
    population.resize(static_cast<std::size_t>(cfg_.population));

    result.history.push_back({sim_time_s_, population.front().fitness});

    // Offspring: crossover between random elites, or mutation of an elite.
    const auto n_par = static_cast<std::size_t>(
        std::min<std::int64_t>(cfg_.parents,
                               static_cast<std::int64_t>(population.size())));
    std::int64_t produced = 0;
    std::int64_t attempts = 0;
    const std::int64_t offspring_target = cfg_.population / 2;
    while (produced < offspring_target && attempts < offspring_target * 10) {
      ++attempts;
      const auto& p1 =
          population[static_cast<std::size_t>(rng.uniform_int(n_par))].arch;
      Arch child;
      if (rng.bernoulli(cfg_.crossover_fraction)) {
        const auto& p2 =
            population[static_cast<std::size_t>(rng.uniform_int(n_par))].arch;
        child = crossover(p1, p2, rng);
        child = full_space ? mutate(child, cfg_.mutation_prob / 2,
                                    cfg_.mutation_prob / 2, rng)
                           : mutate_ops(child, cfg_.mutation_prob / 2, rng);
      } else {
        child = full_space
                    ? mutate(p1, cfg_.mutation_prob, cfg_.mutation_prob, rng)
                    : mutate_ops(p1, cfg_.mutation_prob, rng);
      }
      if (!full_space) apply_functions(child, upper, lower);
      if (admit(child)) ++produced;
    }
    // Keep diversity if mutation stalled on duplicates.
    while (produced < offspring_target) {
      if (admit(sample_candidate(rng))) ++produced;
    }
    flush();
    prog->sim_time_s = sim_time_s_;
    prog->best_objective = result.history.back().best_objective;
    prog->has_best = true;
    ++prog->steps;
    co_await std::suspend_always{};
  }

  std::sort(population.begin(), population.end(), by_fitness);
  const Scored& best = population.front();
  result.best_arch = best.arch;
  result.best_objective = best.fitness;
  result.best_supernet_acc = best.acc;
  result.best_latency_ms = best.latency_ms;
  result.history.push_back({sim_time_s_, best.fitness});
  finalize_result(result);
  prog->sim_time_s = sim_time_s_;
  prog->best_objective = best.fitness;
  prog->has_best = true;
}

core::Stepper HgnasSearch::co_run_multistage(Rng& rng, SearchResult* out,
                                             SearchProgress* prog) {
  reset_run_state();

  // ---- Stage 0: supernet warmup over the full space -----------------------
  if (cfg_.train_supernet) {
    Adam opt(supernet_.parameters(), 1e-3f);
    auto sampler = [this](Rng& r) { return random_arch(cfg_.space, r); };
    for (std::int64_t e = 0; e < cfg_.stage1_epochs; ++e) {
      supernet_.train_epoch(data_.train(), sampler, opt, cfg_.batch_size,
                            rng);
      advance_clock(static_cast<double>(data_.train().size()) *
                    cfg_.sim_train_s_per_sample);
      prog->phase = SearchProgress::Phase::kWarmup;
      prog->sim_time_s = sim_time_s_;
      ++prog->steps;
      co_await std::suspend_always{};
    }
  }

  // ---- Stage 1: function search (objective: supernet accuracy) -----------
  struct ScoredFn {
    FunctionSet upper, lower;
    double fitness = 0.0;
  };
  const bool batch_eval = batch_eval_enabled();
  auto eval_pair = [&](const FunctionSet& up, const FunctionSet& lo) {
    double acc = 0.0;
    for (std::int64_t i = 0; i < cfg_.function_paths_per_eval; ++i) {
      const Arch probe =
          random_arch_with_functions(cfg_.space, up, lo, rng);
      acc += supernet_accuracy(probe, rng);
    }
    return acc / static_cast<double>(cfg_.function_paths_per_eval);
  };
  // Batch path: score fn_pop[first..] in one fork-join — probe paths and
  // their seeds are drawn serially from the main stream, then every probe's
  // supernet pass runs concurrently.
  struct FnProbe {
    Arch arch;
    std::uint64_t seed = 0;
    double acc = 0.0;
  };
  auto eval_group = [&](std::vector<ScoredFn>& group, std::size_t first) {
    const std::int64_t paths = cfg_.function_paths_per_eval;
    const std::int64_t probe_samples = std::min<std::int64_t>(
        cfg_.eval_val_samples,
        static_cast<std::int64_t>(data_.test().size()));
    std::vector<FnProbe> probes;
    probes.reserve((group.size() - first) * static_cast<std::size_t>(paths));
    for (std::size_t i = first; i < group.size(); ++i) {
      for (std::int64_t p = 0; p < paths; ++p) {
        probes.push_back({random_arch_with_functions(
                              cfg_.space, group[i].upper, group[i].lower, rng),
                          rng.next(), 0.0});
        ++accuracy_probes_;
        advance_clock(static_cast<double>(probe_samples) *
                      cfg_.sim_eval_s_per_sample);
      }
    }
    {
      EvalModeGuard eval_mode(supernet_);
      core::parallel_invoke(
          static_cast<std::int64_t>(probes.size()), [&](std::int64_t i) {
            FnProbe& pr = probes[static_cast<std::size_t>(i)];
            Rng probe_rng(pr.seed);
            pr.acc = supernet_.evaluate_concurrent(pr.arch, data_.test(),
                                                   probe_samples, probe_rng);
          });
    }
    for (std::size_t i = first; i < group.size(); ++i) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < paths; ++p)
        acc += probes[(i - first) * static_cast<std::size_t>(paths) +
                      static_cast<std::size_t>(p)]
                   .acc;
      group[i].fitness = acc / static_cast<double>(paths);
    }
  };

  std::vector<ScoredFn> fn_pop;
  for (std::int64_t i = 0; i < cfg_.population; ++i) {
    ScoredFn s{random_functions(rng), random_functions(rng), 0.0};
    if (!batch_eval) s.fitness = eval_pair(s.upper, s.lower);
    fn_pop.push_back(std::move(s));
  }
  if (batch_eval) eval_group(fn_pop, 0);
  prog->phase = SearchProgress::Phase::kStage1;
  prog->sim_time_s = sim_time_s_;
  ++prog->steps;
  co_await std::suspend_always{};
  auto by_fit = [](const ScoredFn& a, const ScoredFn& b) {
    return a.fitness > b.fitness;
  };
  for (std::int64_t t = 0; t < cfg_.iterations; ++t) {
    std::sort(fn_pop.begin(), fn_pop.end(), by_fit);
    fn_pop.resize(static_cast<std::size_t>(cfg_.population));
    const auto n_par = static_cast<std::size_t>(std::min<std::int64_t>(
        cfg_.parents, static_cast<std::int64_t>(fn_pop.size())));
    const std::size_t first_child = fn_pop.size();
    for (std::int64_t c = 0; c < cfg_.population / 2; ++c) {
      const auto& p1 =
          fn_pop[static_cast<std::size_t>(rng.uniform_int(n_par))];
      ScoredFn child;
      if (rng.bernoulli(cfg_.crossover_fraction)) {
        const auto& p2 =
            fn_pop[static_cast<std::size_t>(rng.uniform_int(n_par))];
        child.upper = rng.bernoulli(0.5) ? p1.upper : p2.upper;
        child.lower = rng.bernoulli(0.5) ? p1.lower : p2.lower;
        child.upper = mutate_functions(child.upper, cfg_.mutation_prob / 2,
                                       rng);
        child.lower = mutate_functions(child.lower, cfg_.mutation_prob / 2,
                                       rng);
      } else {
        child.upper = mutate_functions(p1.upper, cfg_.mutation_prob, rng);
        child.lower = mutate_functions(p1.lower, cfg_.mutation_prob, rng);
      }
      if (!batch_eval) child.fitness = eval_pair(child.upper, child.lower);
      fn_pop.push_back(std::move(child));
    }
    if (batch_eval) eval_group(fn_pop, first_child);
    prog->sim_time_s = sim_time_s_;
    ++prog->steps;
    co_await std::suspend_always{};
  }
  std::sort(fn_pop.begin(), fn_pop.end(), by_fit);
  const FunctionSet upper = fn_pop.front().upper;
  const FunctionSet lower = fn_pop.front().lower;

  // ---- Between stages: re-init and pre-train with functions fixed --------
  if (cfg_.train_supernet) {
    supernet_.reinitialize(rng);
    Adam opt(supernet_.parameters(), 1e-3f);
    auto sampler = [this, &upper, &lower](Rng& r) {
      return random_arch_with_functions(cfg_.space, upper, lower, r);
    };
    for (std::int64_t e = 0; e < cfg_.stage2_epochs; ++e) {
      supernet_.train_epoch(data_.train(), sampler, opt, cfg_.batch_size,
                            rng);
      advance_clock(static_cast<double>(data_.train().size()) *
                    cfg_.sim_train_s_per_sample);
      prog->phase = SearchProgress::Phase::kPretrain;
      prog->sim_time_s = sim_time_s_;
      ++prog->steps;
      co_await std::suspend_always{};
    }
  }

  // ---- Stage 2: multi-objective operation search --------------------------
  prog->phase = SearchProgress::Phase::kStage2;
  core::Stepper stage2 =
      co_evolve(upper, lower, /*full_space=*/false, rng, out, prog);
  while (stage2.step()) co_await std::suspend_always{};
  prog->phase = SearchProgress::Phase::kDone;
}

SearchResult HgnasSearch::run_multistage(Rng& rng) {
  SearchResult out;
  SearchProgress prog;
  core::Stepper run = co_run_multistage(rng, &out, &prog);
  while (run.step()) {
  }
  return out;
}

core::Stepper HgnasSearch::co_run_onestage(Rng& rng, SearchResult* out,
                                           SearchProgress* prog) {
  reset_run_state();

  // Same training budget as the multi-stage pipeline, then one joint EA
  // over the full fine-grained space.
  if (cfg_.train_supernet) {
    Adam opt(supernet_.parameters(), 1e-3f);
    auto sampler = [this](Rng& r) { return random_arch(cfg_.space, r); };
    for (std::int64_t e = 0; e < cfg_.stage1_epochs + cfg_.stage2_epochs;
         ++e) {
      supernet_.train_epoch(data_.train(), sampler, opt, cfg_.batch_size,
                            rng);
      advance_clock(static_cast<double>(data_.train().size()) *
                    cfg_.sim_train_s_per_sample);
      prog->phase = SearchProgress::Phase::kWarmup;
      prog->sim_time_s = sim_time_s_;
      ++prog->steps;
      co_await std::suspend_always{};
    }
  }
  prog->phase = SearchProgress::Phase::kStage2;
  core::Stepper ea = co_evolve(FunctionSet{}, FunctionSet{},
                               /*full_space=*/true, rng, out, prog);
  while (ea.step()) co_await std::suspend_always{};
  prog->phase = SearchProgress::Phase::kDone;
}

SearchResult HgnasSearch::run_onestage(Rng& rng) {
  SearchResult out;
  SearchProgress prog;
  core::Stepper run = co_run_onestage(rng, &out, &prog);
  while (run.step()) {
  }
  return out;
}

core::Stepper HgnasSearch::co_run_random(Rng& rng, SearchResult* out,
                                         SearchProgress* prog) {
  reset_run_state();

  if (cfg_.train_supernet) {
    Adam opt(supernet_.parameters(), 1e-3f);
    auto sampler = [this](Rng& r) { return random_arch(cfg_.space, r); };
    for (std::int64_t e = 0; e < cfg_.stage1_epochs + cfg_.stage2_epochs;
         ++e) {
      supernet_.train_epoch(data_.train(), sampler, opt, cfg_.batch_size,
                            rng);
      advance_clock(static_cast<double>(data_.train().size()) *
                    cfg_.sim_train_s_per_sample);
      prog->phase = SearchProgress::Phase::kWarmup;
      prog->sim_time_s = sim_time_s_;
      ++prog->steps;
      co_await std::suspend_always{};
    }
  }

  *out = SearchResult{};
  SearchResult& result = *out;
  open_cache();
  const std::int64_t budget =
      cfg_.population + cfg_.iterations * (cfg_.population / 2);
  // One history point per EA-iteration-equivalent chunk of budget; the
  // batch path also evaluates one chunk per fork-join.
  const std::int64_t chunk =
      std::max<std::int64_t>(1, cfg_.population / 2);
  const bool batch_eval = batch_eval_enabled();
  const std::uint64_t acc_seed = batch_eval ? rng.next() : 0;

  bool have_best = false;
  bool best_feasible = false;
  // Same ordering as the EA: feasibility first, then fitness, then latency.
  // The tiebreak and the report use the measured latency even for OOM
  // candidates, so an all-infeasible run still names its fastest find.
  auto consider = [&](const Scored& s) {
    const bool better =
        !have_best ||
        (s.is_feasible != best_feasible
             ? s.is_feasible
             : (s.fitness != result.best_objective
                    ? s.fitness > result.best_objective
                    : s.raw_latency_ms < result.best_latency_ms));
    if (better) {
      have_best = true;
      best_feasible = s.is_feasible;
      result.best_arch = s.arch;
      result.best_objective = s.fitness;
      result.best_supernet_acc = s.acc;
      result.best_latency_ms = s.raw_latency_ms;
    }
  };

  std::int64_t done = 0;
  while (done < budget) {
    const std::int64_t n = std::min<std::int64_t>(chunk, budget - done);
    if (batch_eval) {
      std::vector<PendingEval> batch;
      batch.reserve(static_cast<std::size_t>(n));
      for (std::int64_t i = 0; i < n; ++i) {
        const Arch arch = random_arch(cfg_.space, rng);
        const Arch canon = canonicalize(arch);
        batch.push_back(PendingEval{arch, arch_to_text(canon), canon.hash()});
      }
      for (const Scored& s : score_batch(batch, acc_seed)) consider(s);
      done += n;
      if (done % chunk == 0)
        result.history.push_back({sim_time_s_, result.best_objective});
      prog->phase = SearchProgress::Phase::kSampling;
      prog->sim_time_s = sim_time_s_;
      prog->best_objective = result.best_objective;
      prog->has_best = have_best;
      ++prog->steps;
      co_await std::suspend_always{};
    } else {
      // Serial path: the historical sequential pipeline, one shared RNG
      // stream. The memo cache is bypassed here because a hit would skip
      // that stream's accuracy draws and change every later candidate.
      for (std::int64_t i = 0; i < n; ++i) {
        ++cache_misses_;
        const Scored s = score_candidate(random_arch(cfg_.space, rng), rng);
        record_frontier(s);
        consider(s);
        ++done;
        if (done % chunk == 0)
          result.history.push_back({sim_time_s_, result.best_objective});
      }
      prog->phase = SearchProgress::Phase::kSampling;
      prog->sim_time_s = sim_time_s_;
      prog->best_objective = result.best_objective;
      prog->has_best = have_best;
      ++prog->steps;
      co_await std::suspend_always{};
    }
  }
  result.history.push_back({sim_time_s_, result.best_objective});
  finalize_result(result);
  prog->phase = SearchProgress::Phase::kDone;
  prog->sim_time_s = sim_time_s_;
  prog->best_objective = result.best_objective;
  prog->has_best = have_best;
}

SearchResult HgnasSearch::run_random(Rng& rng) {
  SearchResult out;
  SearchProgress prog;
  core::Stepper run = co_run_random(rng, &out, &prog);
  while (run.step()) {
  }
  return out;
}

core::Stepper HgnasSearch::run_stepwise(SearchStrategy strategy, Rng& rng,
                                        SearchResult* out,
                                        SearchProgress* prog) {
  switch (strategy) {
    case SearchStrategy::kOnestage:
      return co_run_onestage(rng, out, prog);
    case SearchStrategy::kRandom:
      return co_run_random(rng, out, prog);
    case SearchStrategy::kMultistage:
      break;
  }
  return co_run_multistage(rng, out, prog);
}

std::string SearchProgress::to_text() const {
  const char* name = "idle";
  switch (phase) {
    case Phase::kIdle: name = "idle"; break;
    case Phase::kWarmup: name = "warmup"; break;
    case Phase::kStage1: name = "stage1"; break;
    case Phase::kPretrain: name = "pretrain"; break;
    case Phase::kStage2: name = "stage2"; break;
    case Phase::kSampling: name = "sampling"; break;
    case Phase::kDone: name = "done"; break;
  }
  char buf[128];
  std::snprintf(buf, sizeof buf, "phase=%s steps=%lld sim_time_s=%.3f", name,
                static_cast<long long>(steps), sim_time_s);
  std::string text = buf;
  if (has_best) {
    std::snprintf(buf, sizeof buf, " best_objective=%.6f", best_objective);
    text += buf;
  }
  return text;
}

}  // namespace hg::hgnas
