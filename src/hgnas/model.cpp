#include "hgnas/model.hpp"

#include <algorithm>
#include <stdexcept>

#include "tensor/optim.hpp"

namespace hg::hgnas {

namespace {

void check(bool cond, const std::string& msg) {
  if (!cond) throw std::invalid_argument("GnnModel: " + msg);
}

constexpr std::int64_t kMaxChannels = 8192;  // guard against Full-message blowup

}  // namespace

GnnModel::GnnModel(Arch arch, Workload workload, Rng& rng)
    : arch_(std::move(arch)), workload_(workload) {
  check(!arch_.genes.empty(), "empty architecture");
  const auto flow = channel_flow(arch_, workload_);
  for (auto d : flow)
    check(d > 0 && d <= kMaxChannels,
          "channel count " + std::to_string(d) +
              " out of range (aggregate message blowup?)");

  combine_lin_.resize(arch_.genes.size());
  combine_bn_.resize(arch_.genes.size());
  for (std::size_t i = 0; i < arch_.genes.size(); ++i) {
    const auto& g = arch_.genes[i];
    if (g.op == OpType::Combine) {
      const std::int64_t in = flow[i], out = g.fn.combine_dim();
      combine_lin_[i] = std::make_unique<nn::Linear>(in, out, rng);
      combine_bn_[i] = std::make_unique<nn::BatchNorm1d>(out);
    }
  }
  const std::int64_t d_final = flow.back();
  head1_ = std::make_unique<nn::Linear>(d_final, 128, rng);
  head2_ = std::make_unique<nn::Linear>(128, workload_.num_classes, rng);
}

Tensor GnnModel::forward(const Tensor& points, Rng& rng) {
  check(points.dim() == 2 && points.shape()[1] == workload_.in_dim,
        "forward: points must be [n, " + std::to_string(workload_.in_dim) +
            "], got " + shape_to_string(points.shape()));
  const std::int64_t n = points.shape()[0];
  check(n > 1, "forward: need at least 2 points");
  const std::int64_t kk = std::min<std::int64_t>(workload_.k, n - 1);

  Tensor h = points;
  Tensor skip = h;
  graph::EdgeList g;
  bool graph_built = false, graph_fresh = false;
  const std::vector<bool> dead = dead_sample_mask(arch_);

  auto ensure_graph = [&]() {
    if (!graph_built) {
      g = graph::knn_graph(points.data(), n, kk);
      graph_built = true;
      graph_fresh = true;
    }
  };

  for (std::size_t i = 0; i < arch_.genes.size(); ++i) {
    const auto& gene = arch_.genes[i];
    switch (gene.op) {
      case OpType::Sample:
        if (!graph_fresh && !dead[i]) {
          if (gene.fn.sample == SampleFunc::Knn) {
            g = graph::knn_graph_features(h.data(), n, h.shape()[1], kk);
          } else {
            g = graph::random_graph(n, kk, rng);
          }
          graph_built = true;
          graph_fresh = true;
        }
        break;
      case OpType::Aggregate:
        ensure_graph();
        h = gnn::aggregate(h, g, gene.fn.msg, to_reduce(gene.fn.aggr));
        graph_fresh = false;
        break;
      case OpType::Combine:
        h = combine_lin_[i]->forward(h);
        h = combine_bn_[i]->forward(h);
        h = leaky_relu(h, 0.2f);
        graph_fresh = false;
        break;
      case OpType::Connect:
        if (gene.fn.connect == ConnectFunc::SkipConnect &&
            skip.shape() == h.shape()) {
          h = add(h, skip);
          graph_fresh = false;
        }
        skip = h;  // both variants record a new checkpoint
        break;
    }
  }

  Tensor pooled = gnn::global_max_pool(h);  // [1, d]
  Tensor z = leaky_relu(head1_->forward(pooled), 0.2f);
  return head2_->forward(z);
}

std::vector<Tensor> GnnModel::parameters() const {
  std::vector<Tensor> out;
  for (const auto& l : combine_lin_)
    if (l)
      for (auto& p : l->parameters()) out.push_back(p);
  for (const auto& b : combine_bn_)
    if (b)
      for (auto& p : b->parameters()) out.push_back(p);
  for (auto& p : head1_->parameters()) out.push_back(p);
  for (auto& p : head2_->parameters()) out.push_back(p);
  return out;
}

void GnnModel::set_training(bool training) {
  Module::set_training(training);
  for (auto& l : combine_lin_)
    if (l) l->set_training(training);
  for (auto& b : combine_bn_)
    if (b) b->set_training(training);
  head1_->set_training(training);
  head2_->set_training(training);
}

double GnnModel::param_mb() const {
  return static_cast<double>(num_parameters()) * 4.0 / 1e6;
}

core::Stepper train_model_stepwise(GnnModel& model,
                                   const pointcloud::Dataset& data,
                                   TrainConfig cfg, Rng& rng,
                                   EvalResult* out) {
  check(cfg.epochs > 0 && cfg.batch_size > 0, "train_model: bad config");
  Adam opt(model.parameters(), cfg.lr, 0.9f, 0.999f, 1e-8f,
           cfg.weight_decay);
  const auto& train = data.train();
  const std::int64_t total_steps =
      cfg.epochs * static_cast<std::int64_t>(train.size());
  std::int64_t step = 0;

  model.set_training(true);
  for (std::int64_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    auto order = pointcloud::shuffled_indices(train.size(), rng);
    double epoch_loss = 0.0;
    std::int64_t in_batch = 0;
    for (std::size_t oi = 0; oi < order.size(); ++oi) {
      const auto& s = train[order[oi]];
      Tensor pts = pointcloud::Dataset::to_tensor(s);
      Tensor logits = model.forward(pts, rng);
      const std::int64_t label[1] = {s.label};
      Tensor loss = cross_entropy(logits, label);
      loss.backward();
      epoch_loss += loss.item();
      ++in_batch;
      ++step;
      if (in_batch == cfg.batch_size || oi + 1 == order.size()) {
        if (cfg.cosine_schedule)
          opt.set_lr(cosine_lr(cfg.lr, cfg.lr * 0.01f, step, total_steps));
        opt.step();
        opt.zero_grad();
        in_batch = 0;
      }
    }
    if (cfg.log_every > 0 && (epoch + 1) % cfg.log_every == 0) {
      std::printf("  epoch %3lld  loss %.4f\n",
                  static_cast<long long>(epoch + 1),
                  epoch_loss / static_cast<double>(train.size()));
    }
    co_await std::suspend_always{};
  }
  *out = evaluate_model(model, data.test(), data.num_classes(), rng);
}

EvalResult train_model(GnnModel& model, const pointcloud::Dataset& data,
                       const TrainConfig& cfg, Rng& rng) {
  EvalResult out;
  core::Stepper run = train_model_stepwise(model, data, cfg, rng, &out);
  while (run.step()) {
  }
  return out;
}

EvalResult evaluate_model(GnnModel& model,
                          const std::vector<pointcloud::Sample>& samples,
                          std::int64_t num_classes, Rng& rng) {
  NoGradGuard ng;
  model.set_training(false);
  std::vector<std::int64_t> preds, labels;
  double loss_sum = 0.0;
  for (const auto& s : samples) {
    Tensor pts = pointcloud::Dataset::to_tensor(s);
    Tensor logits = model.forward(pts, rng);
    const std::int64_t label[1] = {s.label};
    loss_sum += cross_entropy(logits, label).item();
    preds.push_back(argmax_rows(logits)[0]);
    labels.push_back(s.label);
  }
  model.set_training(true);
  EvalResult r;
  r.overall_acc = nn::overall_accuracy(preds, labels);
  r.balanced_acc = nn::balanced_accuracy(preds, labels, num_classes);
  r.mean_loss = samples.empty()
                    ? 0.0
                    : loss_sum / static_cast<double>(samples.size());
  return r;
}

}  // namespace hg::hgnas
