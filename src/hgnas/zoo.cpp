#include "hgnas/zoo.hpp"

namespace hg::hgnas::zoo {

namespace {

PositionGene sample() {
  PositionGene g;
  g.op = OpType::Sample;
  g.fn.sample = SampleFunc::Knn;
  return g;
}

PositionGene combine(std::int64_t dim) {
  PositionGene g;
  g.op = OpType::Combine;
  for (std::int64_t i = 0; i < kNumCombineDims; ++i)
    if (kCombineDims[static_cast<std::size_t>(i)] == dim)
      g.fn.combine_dim_idx = i;
  return g;
}

PositionGene aggregate(gnn::MessageType msg, AggrType aggr) {
  PositionGene g;
  g.op = OpType::Aggregate;
  g.fn.msg = msg;
  g.fn.aggr = aggr;
  return g;
}

}  // namespace

Arch rtx_fast() {
  Arch a;
  a.genes = {sample(), combine(64),
             aggregate(gnn::MessageType::TargetRel, AggrType::Max),
             aggregate(gnn::MessageType::TargetRel, AggrType::Mean),
             sample()};
  return a;
}

Arch intel_fast() {
  Arch a;
  a.genes = {sample(), combine(64),
             aggregate(gnn::MessageType::TargetRel, AggrType::Max),
             combine(64), combine(128),
             aggregate(gnn::MessageType::TargetRel, AggrType::Mean)};
  return a;
}

Arch tx2_fast() {
  Arch a;
  a.genes = {sample(),
             aggregate(gnn::MessageType::TargetRel, AggrType::Max),
             aggregate(gnn::MessageType::TargetRel, AggrType::Mean),
             combine(128),
             aggregate(gnn::MessageType::TargetRel, AggrType::Mean)};
  return a;
}

Arch pi_fast() {
  Arch a;
  a.genes = {sample(), sample(), combine(128),
             aggregate(gnn::MessageType::SourcePos, AggrType::Max),
             combine(32), combine(32),
             aggregate(gnn::MessageType::SourcePos, AggrType::Max)};
  return a;
}

Arch fast_for(hw::DeviceKind kind) {
  switch (kind) {
    case hw::DeviceKind::Rtx3080: return rtx_fast();
    case hw::DeviceKind::IntelI7_8700K: return intel_fast();
    case hw::DeviceKind::JetsonTx2: return tx2_fast();
    case hw::DeviceKind::RaspberryPi3B: return pi_fast();
  }
  return pi_fast();
}

}  // namespace hg::hgnas::zoo
