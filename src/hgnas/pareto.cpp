#include "hgnas/pareto.hpp"

#include <algorithm>
#include <utility>

namespace hg::hgnas {

bool dominates(const ParetoPoint& a, const ParetoPoint& b) {
  const bool no_worse =
      a.accuracy >= b.accuracy && a.latency_ms <= b.latency_ms;
  const bool strictly_better =
      a.accuracy > b.accuracy || a.latency_ms < b.latency_ms;
  return no_worse && strictly_better;
}

std::vector<ParetoPoint> pareto_front(std::vector<ParetoPoint> points) {
  std::sort(points.begin(), points.end(),
            [](const ParetoPoint& a, const ParetoPoint& b) {
              if (a.latency_ms != b.latency_ms)
                return a.latency_ms < b.latency_ms;
              return a.accuracy > b.accuracy;
            });
  std::vector<ParetoPoint> front;
  double best_acc = -1.0;
  for (auto& p : points) {
    if (p.accuracy > best_acc) {
      best_acc = p.accuracy;
      front.push_back(std::move(p));
    }
  }
  return front;
}

void ParetoTracker::record(Arch arch, double accuracy, double latency_ms) {
  record(ParetoPoint{std::move(arch), accuracy, latency_ms});
}

void ParetoTracker::record(ParetoPoint point) {
  ++recorded_;
  // front_ is a staircase: latency strictly ascending, accuracy strictly
  // ascending. The point is dominated (or duplicated) iff some entry is at
  // most as slow and at least as accurate; admitting it evicts every entry
  // it dominates — exactly pareto_front()'s keep-once tie rules.
  const auto at_or_after = std::lower_bound(
      front_.begin(), front_.end(), point.latency_ms,
      [](const ParetoPoint& q, double lat) { return q.latency_ms < lat; });
  const auto i = static_cast<std::size_t>(at_or_after - front_.begin());
  if (i > 0 && front_[i - 1].accuracy >= point.accuracy) return;
  if (i < front_.size() && front_[i].latency_ms == point.latency_ms &&
      front_[i].accuracy >= point.accuracy)
    return;
  std::size_t j = i;
  while (j < front_.size() && front_[j].accuracy <= point.accuracy) ++j;
  if (j == i) {
    front_.insert(at_or_after, std::move(point));
  } else {
    front_[i] = std::move(point);
    front_.erase(front_.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                 front_.begin() + static_cast<std::ptrdiff_t>(j));
  }
}

void ParetoTracker::clear() {
  front_.clear();
  recorded_ = 0;
}

double dominance_ratio(const std::vector<ParetoPoint>& ours,
                       const std::vector<ParetoPoint>& theirs) {
  if (theirs.empty()) return 0.0;
  std::size_t dominated = 0;
  for (const auto& t : theirs) {
    for (const auto& o : ours) {
      if (dominates(o, t)) {
        ++dominated;
        break;
      }
    }
  }
  return static_cast<double>(dominated) / static_cast<double>(theirs.size());
}

}  // namespace hg::hgnas
