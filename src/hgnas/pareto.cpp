#include "hgnas/pareto.hpp"

#include <algorithm>

namespace hg::hgnas {

bool dominates(const ParetoPoint& a, const ParetoPoint& b) {
  const bool no_worse =
      a.accuracy >= b.accuracy && a.latency_ms <= b.latency_ms;
  const bool strictly_better =
      a.accuracy > b.accuracy || a.latency_ms < b.latency_ms;
  return no_worse && strictly_better;
}

std::vector<ParetoPoint> pareto_front(std::vector<ParetoPoint> points) {
  std::sort(points.begin(), points.end(),
            [](const ParetoPoint& a, const ParetoPoint& b) {
              if (a.latency_ms != b.latency_ms)
                return a.latency_ms < b.latency_ms;
              return a.accuracy > b.accuracy;
            });
  std::vector<ParetoPoint> front;
  double best_acc = -1.0;
  for (auto& p : points) {
    if (p.accuracy > best_acc) {
      best_acc = p.accuracy;
      front.push_back(std::move(p));
    }
  }
  return front;
}

double dominance_ratio(const std::vector<ParetoPoint>& ours,
                       const std::vector<ParetoPoint>& theirs) {
  if (theirs.empty()) return 0.0;
  std::size_t dominated = 0;
  for (const auto& t : theirs) {
    for (const auto& o : ours) {
      if (dominates(o, t)) {
        ++dominated;
        break;
      }
    }
  }
  return static_cast<double>(dominated) / static_cast<double>(theirs.size());
}

}  // namespace hg::hgnas
