// zoo.hpp — reference architectures from the paper's Fig. 10.
//
// These are the Device_Fast networks HGNAS discovered for each platform,
// transcribed into this repo's design space. They serve as regression
// anchors (tests assert their qualitative properties: few KNNs on GPU-like
// devices, few aggregates on the CPU, simplified ops on the Pi) and as the
// "Ours" models in the Fig. 1 reproduction.
#pragma once

#include "hgnas/arch.hpp"
#include "hw/device.hpp"

namespace hg::hgnas::zoo {

/// RTX_Fast: KNN, Combine(64), Aggregate(target||rel, max),
/// Aggregate(target||rel, mean), KNN (merged away), Classifier.
Arch rtx_fast();

/// Intel_Fast: KNN, Combine(64), Aggregate(target||rel, max), Combine(64),
/// Combine(128), Aggregate(target||rel, mean), Classifier.
Arch intel_fast();

/// TX2_Fast: KNN, Aggregate(target||rel, max), Aggregate(target||rel,
/// mean), Combine(128), Aggregate(target||rel, mean), Classifier.
Arch tx2_fast();

/// Pi_Fast: KNN, KNN (merged), Combine(128), Aggregate(source, max),
/// Combine(32), Combine(32), Aggregate(source, max), Classifier.
Arch pi_fast();

/// The Fig. 10 network for a given device kind.
Arch fast_for(hw::DeviceKind kind);

}  // namespace hg::hgnas::zoo
