#include "hgnas/serialize_arch.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace hg::hgnas {

namespace {

[[noreturn]] void fail_line(std::size_t line_no, const std::string& msg) {
  throw std::invalid_argument("arch_from_text: line " +
                              std::to_string(line_no) + ": " + msg);
}

std::string msg_token(gnn::MessageType m) {
  switch (m) {
    case gnn::MessageType::SourcePos: return "source";
    case gnn::MessageType::TargetPos: return "target";
    case gnn::MessageType::RelPos: return "rel";
    case gnn::MessageType::Distance: return "distance";
    case gnn::MessageType::SourceRel: return "source||rel";
    case gnn::MessageType::TargetRel: return "target||rel";
    case gnn::MessageType::Full: return "full";
  }
  return "?";
}

gnn::MessageType parse_msg(const std::string& s, std::size_t line_no) {
  static const std::unordered_map<std::string, gnn::MessageType> map = {
      {"source", gnn::MessageType::SourcePos},
      {"target", gnn::MessageType::TargetPos},
      {"rel", gnn::MessageType::RelPos},
      {"distance", gnn::MessageType::Distance},
      {"source||rel", gnn::MessageType::SourceRel},
      {"target||rel", gnn::MessageType::TargetRel},
      {"full", gnn::MessageType::Full},
  };
  auto it = map.find(s);
  if (it == map.end()) fail_line(line_no, "unknown message type '" + s + "'");
  return it->second;
}

AggrType parse_aggr(const std::string& s, std::size_t line_no) {
  if (s == "sum") return AggrType::Sum;
  if (s == "min") return AggrType::Min;
  if (s == "max") return AggrType::Max;
  if (s == "mean") return AggrType::Mean;
  fail_line(line_no, "unknown aggregator '" + s + "'");
}

/// "key=value" -> value, checking the key.
std::string expect_kv(const std::string& token, const std::string& key,
                      std::size_t line_no) {
  const auto eq = token.find('=');
  if (eq == std::string::npos || token.substr(0, eq) != key)
    fail_line(line_no, "expected '" + key + "=...', got '" + token + "'");
  return token.substr(eq + 1);
}

}  // namespace

std::string arch_to_text(const Arch& arch) {
  std::ostringstream out;
  out << "hgnas-arch v1\n";
  out << "positions " << arch.genes.size() << "\n";
  for (std::size_t i = 0; i < arch.genes.size(); ++i) {
    const auto& g = arch.genes[i];
    out << i << " ";
    switch (g.op) {
      case OpType::Connect:
        out << "connect fn="
            << (g.fn.connect == ConnectFunc::SkipConnect ? "skip"
                                                         : "identity");
        break;
      case OpType::Aggregate:
        out << "aggregate msg=" << msg_token(g.fn.msg)
            << " aggr=" << aggr_type_name(g.fn.aggr);
        break;
      case OpType::Combine:
        out << "combine dim=" << g.fn.combine_dim();
        break;
      case OpType::Sample:
        out << "sample fn="
            << (g.fn.sample == SampleFunc::Knn ? "knn" : "random");
        break;
    }
    out << "\n";
  }
  return out.str();
}

Arch arch_from_text(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;

  auto next_line = [&]() -> bool {
    while (std::getline(in, line)) {
      ++line_no;
      if (!line.empty() && line[0] != '#') return true;
    }
    return false;
  };

  if (!next_line() || line != "hgnas-arch v1")
    fail_line(line_no, "missing 'hgnas-arch v1' header");
  if (!next_line()) fail_line(line_no, "missing 'positions N' line");
  std::istringstream hdr(line);
  std::string word;
  std::int64_t positions = 0;
  hdr >> word >> positions;
  if (word != "positions" || positions <= 0)
    fail_line(line_no, "malformed positions line '" + line + "'");

  Arch arch;
  arch.genes.resize(static_cast<std::size_t>(positions));
  std::vector<bool> seen(static_cast<std::size_t>(positions), false);
  while (next_line()) {
    std::istringstream ls(line);
    std::int64_t idx = -1;
    std::string op;
    ls >> idx >> op;
    if (idx < 0 || idx >= positions)
      fail_line(line_no, "position index out of range");
    if (seen[static_cast<std::size_t>(idx)])
      fail_line(line_no, "duplicate position " + std::to_string(idx));
    seen[static_cast<std::size_t>(idx)] = true;
    PositionGene& g = arch.genes[static_cast<std::size_t>(idx)];
    std::string tok;
    if (op == "connect") {
      g.op = OpType::Connect;
      ls >> tok;
      const std::string v = expect_kv(tok, "fn", line_no);
      if (v == "skip") g.fn.connect = ConnectFunc::SkipConnect;
      else if (v == "identity") g.fn.connect = ConnectFunc::Identity;
      else fail_line(line_no, "unknown connect fn '" + v + "'");
    } else if (op == "aggregate") {
      g.op = OpType::Aggregate;
      ls >> tok;
      g.fn.msg = parse_msg(expect_kv(tok, "msg", line_no), line_no);
      ls >> tok;
      g.fn.aggr = parse_aggr(expect_kv(tok, "aggr", line_no), line_no);
    } else if (op == "combine") {
      g.op = OpType::Combine;
      ls >> tok;
      const std::int64_t dim = std::stoll(expect_kv(tok, "dim", line_no));
      bool found = false;
      for (std::int64_t i = 0; i < kNumCombineDims; ++i)
        if (kCombineDims[static_cast<std::size_t>(i)] == dim) {
          g.fn.combine_dim_idx = i;
          found = true;
        }
      if (!found)
        fail_line(line_no,
                  "dim=" + std::to_string(dim) + " is not in Table I");
    } else if (op == "sample") {
      g.op = OpType::Sample;
      ls >> tok;
      const std::string v = expect_kv(tok, "fn", line_no);
      if (v == "knn") g.fn.sample = SampleFunc::Knn;
      else if (v == "random") g.fn.sample = SampleFunc::Random;
      else fail_line(line_no, "unknown sample fn '" + v + "'");
    } else {
      fail_line(line_no, "unknown operation '" + op + "'");
    }
  }
  for (std::size_t i = 0; i < seen.size(); ++i)
    if (!seen[i])
      throw std::invalid_argument("arch_from_text: position " +
                                  std::to_string(i) + " missing");
  return arch;
}

void save_arch(const std::string& path, const Arch& arch) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_arch: cannot open " + path);
  out << arch_to_text(arch);
  if (!out) throw std::runtime_error("save_arch: write failed for " + path);
}

Arch load_arch(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_arch: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return arch_from_text(buf.str());
}

}  // namespace hg::hgnas
