// serialize_arch.hpp — human-readable architecture persistence.
//
// A searched architecture is the deployable artifact of HGNAS; this module
// stores it as a stable line-oriented text format so deployments, ablations
// and regression tests can round-trip designs:
//
//   hgnas-arch v1
//   positions 12
//   0 combine   dim=64
//   1 aggregate msg=target||rel aggr=max
//   2 sample    fn=knn
//   3 connect   fn=skip
//   ...
#pragma once

#include <string>

#include "hgnas/arch.hpp"

namespace hg::hgnas {

/// Serialise to the v1 text format.
std::string arch_to_text(const Arch& arch);

/// Parse the v1 text format. Throws std::invalid_argument with a
/// line-numbered message on any malformed input.
Arch arch_from_text(const std::string& text);

/// Convenience file wrappers (throw std::runtime_error on I/O failure).
void save_arch(const std::string& path, const Arch& arch);
Arch load_arch(const std::string& path);

}  // namespace hg::hgnas
