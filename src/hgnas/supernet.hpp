// supernet.hpp — weight-sharing GNN supernet (single-path one-shot).
//
// The supernet covers the whole design space with one parameter bank per
// (position, choice) so that sub-network accuracy can be evaluated without
// retraining (Guo et al. [22], paper §III-C). To keep all positions
// compatible, every operation is dimension-aligned to a fixed hidden width
// H ("supernet training demands that operations within each position must
// obtain the same hidden dimension length", §III-B):
//
//   * input projection   Linear(3 -> H)
//   * Combine(c)         Linear(H -> c) + LeakyReLU + align Linear(c -> H)
//                        — the bottleneck width c is the function choice,
//                        so stage-1 function search feels its capacity.
//   * Aggregate(msg, r)  messages from H-dim features, scatter-reduce,
//                        align Linear(message_dim(msg, H) -> H).
//   * Sample / Connect   weightless (channels are already aligned).
//
// The alignment linears exist only here; the finalised GnnModel rebuilds
// the architecture with natural channel flow and no alignment weights.
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "hgnas/arch.hpp"
#include "nn/nn.hpp"
#include "pointcloud/pointcloud.hpp"
#include "tensor/optim.hpp"

namespace hg::hgnas {

struct SupernetConfig {
  std::int64_t hidden = 32;       // H
  std::int64_t k = 10;            // neighbours per sample
  std::int64_t num_classes = 10;  // synthetic dataset classes
  std::int64_t head_hidden = 64;
};

class SuperNet final : public nn::Module {
 public:
  SuperNet(const SpaceConfig& space, const SupernetConfig& cfg, Rng& rng);

  /// Forward one point cloud through the path selected by `arch`
  /// (operation types and function attributes). rng drives Random samples.
  Tensor forward(const Arch& arch, const Tensor& points, Rng& rng);

  std::vector<Tensor> parameters() const override;
  void set_training(bool training) override;

  /// One SPOS training pass over `train`: every sample gets a fresh
  /// uniformly-sampled path from `sampler`. Returns mean loss.
  ///
  /// When the execution pool is active (num_threads > 1), the forward
  /// passes of each gradient-accumulation batch run concurrently — paths
  /// and per-sample RNG streams are drawn serially up front and the
  /// backward passes replay serially in sample order, so the result is
  /// identical for every pool width > 1. num_threads == 1 is the
  /// historical sequential pipeline (shared RNG stream), bit for bit.
  double train_epoch(const std::vector<pointcloud::Sample>& train,
                     const std::function<Arch(Rng&)>& sampler, Adam& opt,
                     std::int64_t batch_size, Rng& rng);

  /// Validation accuracy of one path over (a prefix of) `val`.
  double evaluate(const Arch& arch,
                  const std::vector<pointcloud::Sample>& val,
                  std::int64_t max_samples, Rng& rng);

  /// evaluate() without the training-mode toggles: forward passes only,
  /// under a per-thread NoGradGuard. Safe to call concurrently from pool
  /// workers (forward reads the shared weights, never writes), provided the
  /// caller has set_training(false) around the whole batch and each caller
  /// passes its own Rng.
  double evaluate_concurrent(const Arch& arch,
                             const std::vector<pointcloud::Sample>& val,
                             std::int64_t max_samples, Rng& rng);

  /// Re-initialise every weight (paper re-inits the supernet between
  /// stage 1 and stage 2).
  void reinitialize(Rng& rng);

  const SpaceConfig& space() const { return space_; }
  const SupernetConfig& config() const { return cfg_; }

  /// Monotone counter bumped by every weight mutation (train_epoch,
  /// reinitialize). Anything derived from the weights — notably memoised
  /// candidate scores (hgnas::EvalCache) — keys its validity on this.
  /// Atomic so a reader on another thread (a concurrent cache-scope check)
  /// observes a published value; the weights themselves are NOT protected —
  /// callers that mutate them must hold whatever exclusion the sharing
  /// layer provides (serve::Service runs all training exclusively).
  std::int64_t weight_version() const {
    return weight_version_.load(std::memory_order_acquire);
  }

 private:
  SpaceConfig space_;
  SupernetConfig cfg_;
  // Deliberately atomic rather than HG_GUARDED_BY a mutex (see
  // core/annotations.hpp): cross-thread readers only need a published
  // value, and the weights it versions are externally serialized.
  std::atomic<std::int64_t> weight_version_{0};

  std::unique_ptr<nn::Linear> input_proj_;
  // combine_[pos][dim_idx] -> {bottleneck, align}
  std::vector<std::vector<std::unique_ptr<nn::Linear>>> combine_in_;
  std::vector<std::vector<std::unique_ptr<nn::Linear>>> combine_out_;
  // aggr_align_[pos][msg] -> align linear
  std::vector<std::vector<std::unique_ptr<nn::Linear>>> aggr_align_;
  std::unique_ptr<nn::Linear> head1_, head2_;
};

}  // namespace hg::hgnas
