// pareto.hpp — accuracy/latency Pareto-front utilities.
//
// The paper's Fig. 6 frames results as an accuracy-vs-latency frontier
// ("HGNAS consistently maintains a better performance frontier"). These
// helpers extract non-dominated sets from scored candidates so frontiers
// can be computed for any population or search log.
#pragma once

#include <vector>

#include "hgnas/arch.hpp"

namespace hg::hgnas {

/// One evaluated design point (higher accuracy better, lower latency
/// better).
struct ParetoPoint {
  Arch arch;
  double accuracy = 0.0;
  double latency_ms = 0.0;
};

/// True iff `a` dominates `b`: at least as good on both axes and strictly
/// better on one.
bool dominates(const ParetoPoint& a, const ParetoPoint& b);

/// Non-dominated subset, sorted by ascending latency. Duplicated points
/// (same accuracy and latency) are kept once.
std::vector<ParetoPoint> pareto_front(std::vector<ParetoPoint> points);

/// Fraction of `theirs` dominated by at least one point of `ours` — a
/// scalar summary of "maintains a better frontier".
double dominance_ratio(const std::vector<ParetoPoint>& ours,
                       const std::vector<ParetoPoint>& theirs);

}  // namespace hg::hgnas
