// pareto.hpp — accuracy/latency Pareto-front utilities.
//
// The paper's Fig. 6 frames results as an accuracy-vs-latency frontier
// ("HGNAS consistently maintains a better performance frontier"). These
// helpers extract non-dominated sets from scored candidates so frontiers
// can be computed for any population or search log.
#pragma once

#include <vector>

#include "hgnas/arch.hpp"

namespace hg::hgnas {

/// One evaluated design point (higher accuracy better, lower latency
/// better).
struct ParetoPoint {
  Arch arch;
  double accuracy = 0.0;
  double latency_ms = 0.0;
};

/// True iff `a` dominates `b`: at least as good on both axes and strictly
/// better on one.
bool dominates(const ParetoPoint& a, const ParetoPoint& b);

/// Non-dominated subset, sorted by ascending latency. Duplicated points
/// (same accuracy and latency) are kept once.
std::vector<ParetoPoint> pareto_front(std::vector<ParetoPoint> points);

/// Fraction of `theirs` dominated by at least one point of `ours` — a
/// scalar summary of "maintains a better frontier".
double dominance_ratio(const std::vector<ParetoPoint>& ours,
                       const std::vector<ParetoPoint>& theirs);

/// Incremental Pareto bookkeeping: record() every evaluated design point as
/// it is scored and frontier() is always the non-dominated subset of
/// everything seen so far — identical to calling pareto_front() on the full
/// log, without retaining the log. The search loop threads one of these
/// through candidate scoring so any run reports its accuracy–latency
/// frontier (Fig. 6) for free.
///
/// Not thread-safe: record from one thread (the search records serially,
/// after each evaluation batch joins).
class ParetoTracker {
 public:
  void record(Arch arch, double accuracy, double latency_ms);
  void record(ParetoPoint point);

  /// Current non-dominated set, ascending latency (strictly ascending
  /// accuracy follows from non-domination).
  const std::vector<ParetoPoint>& frontier() const { return front_; }

  /// Total points recorded (dominated ones included).
  std::int64_t recorded() const { return recorded_; }

  void clear();

 private:
  std::vector<ParetoPoint> front_;  // sorted: latency and accuracy ascending
  std::int64_t recorded_ = 0;
};

}  // namespace hg::hgnas
