#include "hgnas/arch.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hg::hgnas {

namespace {

void check(bool cond, const std::string& msg) {
  if (!cond) throw std::invalid_argument("hgnas: " + msg);
}

/// Per-position option count of the full fine-grained space:
/// connect(2) + aggregate(4 aggregators x 7 messages) + combine(6) +
/// sample(2) = 38.
constexpr double kOptionsPerPosition = 2.0 + 4.0 * 7.0 + 6.0 + 2.0;

}  // namespace

std::string op_type_name(OpType t) {
  switch (t) {
    case OpType::Connect: return "Connect";
    case OpType::Aggregate: return "Aggregate";
    case OpType::Combine: return "Combine";
    case OpType::Sample: return "Sample";
  }
  return "?";
}

std::string connect_func_name(ConnectFunc f) {
  return f == ConnectFunc::SkipConnect ? "skip" : "identity";
}

std::string aggr_type_name(AggrType a) {
  switch (a) {
    case AggrType::Sum: return "sum";
    case AggrType::Min: return "min";
    case AggrType::Max: return "max";
    case AggrType::Mean: return "mean";
  }
  return "?";
}

std::string sample_func_name(SampleFunc s) {
  return s == SampleFunc::Knn ? "KNN" : "Random";
}

Reduce to_reduce(AggrType a) {
  switch (a) {
    case AggrType::Sum: return Reduce::Sum;
    case AggrType::Min: return Reduce::Min;
    case AggrType::Max: return Reduce::Max;
    case AggrType::Mean: return Reduce::Mean;
  }
  throw std::invalid_argument("to_reduce: unknown aggregator");
}

std::uint64_t Arch::hash() const {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  for (const auto& g : genes) {
    mix(static_cast<std::uint64_t>(g.op));
    mix(static_cast<std::uint64_t>(g.fn.connect));
    mix(static_cast<std::uint64_t>(g.fn.aggr));
    mix(static_cast<std::uint64_t>(g.fn.msg));
    mix(static_cast<std::uint64_t>(g.fn.combine_dim_idx));
    mix(static_cast<std::uint64_t>(g.fn.sample));
  }
  return h;
}

std::vector<bool> dead_sample_mask(const Arch& arch) {
  std::vector<bool> dead(arch.genes.size(), false);
  bool aggregate_later = false;
  for (std::size_t i = arch.genes.size(); i-- > 0;) {
    if (arch.genes[i].op == OpType::Sample && !aggregate_later)
      dead[i] = true;
    if (arch.genes[i].op == OpType::Aggregate) aggregate_later = true;
  }
  return dead;
}

ExecMarks compute_exec_marks(const Arch& arch) {
  ExecMarks marks;
  marks.sample_executes.assign(arch.genes.size(), false);
  marks.implicit_initial_knn.assign(arch.genes.size(), false);
  const std::vector<bool> dead = dead_sample_mask(arch);
  bool graph_built = false, graph_fresh = false;
  for (std::size_t i = 0; i < arch.genes.size(); ++i) {
    switch (arch.genes[i].op) {
      case OpType::Sample:
        if (!graph_fresh && !dead[i]) {
          marks.sample_executes[i] = true;
          graph_built = true;
          graph_fresh = true;
        }
        break;
      case OpType::Aggregate:
        if (!graph_built) {
          marks.implicit_initial_knn[i] = true;
          graph_built = true;
        }
        graph_fresh = false;
        break;
      case OpType::Combine:
        graph_fresh = false;
        break;
      case OpType::Connect:
        if (arch.genes[i].fn.connect == ConnectFunc::SkipConnect)
          graph_fresh = false;
        break;
    }
  }
  return marks;
}

std::vector<std::int64_t> channel_flow(const Arch& arch, const Workload& w) {
  std::vector<std::int64_t> flow;
  flow.reserve(arch.genes.size() + 1);
  std::int64_t d = w.in_dim;
  flow.push_back(d);
  for (const auto& g : arch.genes) {
    switch (g.op) {
      case OpType::Aggregate:
        d = gnn::message_dim(g.fn.msg, d);
        break;
      case OpType::Combine:
        d = g.fn.combine_dim();
        break;
      case OpType::Connect:
      case OpType::Sample:
        break;  // channel-preserving
    }
    flow.push_back(d);
  }
  return flow;
}

hw::Trace lower_to_trace(const Arch& arch, const Workload& w) {
  check(w.num_points > 1, "lower_to_trace: need at least 2 points");
  const std::int64_t n = w.num_points;
  const std::int64_t kk = std::min<std::int64_t>(w.k, n - 1);
  const std::int64_t e = n * kk;

  hw::TraceBuilder tb;
  std::int64_t d = w.in_dim;
  double params = 0.0;
  // Single source of truth for merging / dead-sample elimination / the
  // lazy initial KNN (shared with the predictor's feature encoding).
  const ExecMarks marks = compute_exec_marks(arch);

  for (std::size_t gi = 0; gi < arch.genes.size(); ++gi) {
    const auto& g = arch.genes[gi];
    switch (g.op) {
      case OpType::Sample:
        if (marks.sample_executes[gi]) {
          if (g.fn.sample == SampleFunc::Knn)
            tb.knn(n, d, kk);
          else
            tb.random_sample(n, kk);
        }
        break;
      case OpType::Aggregate: {
        if (marks.implicit_initial_knn[gi]) tb.knn(n, w.in_dim, kk);
        const std::int64_t md = gnn::message_dim(g.fn.msg, d);
        tb.aggregate(e, md);
        d = md;
        break;
      }
      case OpType::Combine: {
        const std::int64_t c = g.fn.combine_dim();
        tb.combine(n, d, c);
        tb.other(n, c, "bn_act");
        params += static_cast<double>(d * c + c) + 2.0 * static_cast<double>(c);
        d = c;
        break;
      }
      case OpType::Connect:
        if (g.fn.connect == ConnectFunc::SkipConnect)
          tb.other(n, d, "skip_add");
        break;
    }
  }

  // Head: global max pool + MLP(d -> head_hidden -> classes).
  const std::int64_t hh = 128;
  tb.other(n, d, "global_max_pool");
  tb.combine(1, d, hh);
  tb.combine(1, hh, w.num_classes);
  params += static_cast<double>(d * hh + hh) +
            static_cast<double>(hh * w.num_classes + w.num_classes);
  tb.set_param_mb(params * 4.0 / 1e6);
  return tb.build();
}

double arch_param_mb(const Arch& arch, const Workload& w) {
  return lower_to_trace(arch, w).param_mb;
}

std::string visualize(const Arch& arch, const Workload& w) {
  std::string out;
  std::int64_t d = w.in_dim;
  bool graph_built = false, graph_fresh = false;
  const std::vector<bool> dead = dead_sample_mask(arch);
  for (std::size_t gi = 0; gi < arch.genes.size(); ++gi) {
    const auto& g = arch.genes[gi];
    switch (g.op) {
      case OpType::Sample:
        if (!graph_fresh && !dead[gi]) {
          out += sample_func_name(g.fn.sample);
          out += "\n";
          graph_built = true;
          graph_fresh = true;
        }
        break;
      case OpType::Aggregate: {
        if (!graph_built) {
          out += "KNN (implicit)\n";
          graph_built = true;
        }
        out += "Aggregate (" + gnn::message_type_name(g.fn.msg) + ", " +
               aggr_type_name(g.fn.aggr) + ")\n";
        d = gnn::message_dim(g.fn.msg, d);
        graph_fresh = false;
        break;
      }
      case OpType::Combine:
        out += "Combine (" + std::to_string(g.fn.combine_dim()) + ")\n";
        d = g.fn.combine_dim();
        graph_fresh = false;
        break;
      case OpType::Connect:
        if (g.fn.connect == ConnectFunc::SkipConnect) {
          out += "Skip-connect\n";
          graph_fresh = false;
        }
        break;
    }
  }
  out += "Classifier\n";
  return out;
}

Arch canonicalize(const Arch& arch) {
  Arch out = arch;
  for (auto& g : out.genes) {
    FunctionSet fn;  // defaults
    switch (g.op) {
      case OpType::Connect: fn.connect = g.fn.connect; break;
      case OpType::Aggregate:
        fn.aggr = g.fn.aggr;
        fn.msg = g.fn.msg;
        break;
      case OpType::Combine: fn.combine_dim_idx = g.fn.combine_dim_idx; break;
      case OpType::Sample: fn.sample = g.fn.sample; break;
    }
    g.fn = fn;
  }
  return out;
}

FunctionSet random_functions(Rng& rng) {
  FunctionSet fn;
  fn.connect = static_cast<ConnectFunc>(rng.uniform_int(
      static_cast<std::uint64_t>(kNumConnectFuncs)));
  fn.aggr = static_cast<AggrType>(
      rng.uniform_int(static_cast<std::uint64_t>(kNumAggrTypes)));
  fn.msg = static_cast<gnn::MessageType>(
      rng.uniform_int(static_cast<std::uint64_t>(gnn::kNumMessageTypes)));
  fn.combine_dim_idx = static_cast<std::int64_t>(
      rng.uniform_int(static_cast<std::uint64_t>(kNumCombineDims)));
  fn.sample = static_cast<SampleFunc>(
      rng.uniform_int(static_cast<std::uint64_t>(kNumSampleFuncs)));
  return fn;
}

namespace {

OpType random_op(Rng& rng) {
  return static_cast<OpType>(
      rng.uniform_int(static_cast<std::uint64_t>(kNumOpTypes)));
}

}  // namespace

Arch random_arch(const SpaceConfig& cfg, Rng& rng) {
  check(cfg.num_positions > 0, "random_arch: num_positions must be positive");
  Arch a;
  a.genes.resize(static_cast<std::size_t>(cfg.num_positions));
  for (auto& g : a.genes) {
    g.op = random_op(rng);
    g.fn = random_functions(rng);
  }
  return a;
}

Arch random_arch_with_functions(const SpaceConfig& cfg,
                                const FunctionSet& upper,
                                const FunctionSet& lower, Rng& rng) {
  Arch a = random_arch(cfg, rng);
  apply_functions(a, upper, lower);
  return a;
}

void apply_functions(Arch& arch, const FunctionSet& upper,
                     const FunctionSet& lower) {
  const std::size_t n = arch.genes.size();
  for (std::size_t i = 0; i < n; ++i)
    arch.genes[i].fn = (i < (n + 1) / 2) ? upper : lower;
}

Arch mutate(const Arch& parent, double p_op, double p_fn, Rng& rng) {
  Arch child = parent;
  for (auto& g : child.genes) {
    if (rng.bernoulli(p_op)) g.op = random_op(rng);
    if (rng.bernoulli(p_fn)) g.fn = random_functions(rng);
  }
  return child;
}

Arch mutate_ops(const Arch& parent, double p_op, Rng& rng) {
  Arch child = parent;
  for (auto& g : child.genes)
    if (rng.bernoulli(p_op)) g.op = random_op(rng);
  return child;
}

Arch crossover(const Arch& a, const Arch& b, Rng& rng) {
  check(a.genes.size() == b.genes.size(),
        "crossover: position count mismatch");
  Arch child = a;
  for (std::size_t i = 0; i < child.genes.size(); ++i)
    if (rng.bernoulli(0.5)) child.genes[i] = b.genes[i];
  return child;
}

FunctionSet mutate_functions(const FunctionSet& parent, double p, Rng& rng) {
  FunctionSet fn = parent;
  const FunctionSet fresh = random_functions(rng);
  if (rng.bernoulli(p)) fn.connect = fresh.connect;
  if (rng.bernoulli(p)) fn.aggr = fresh.aggr;
  if (rng.bernoulli(p)) fn.msg = fresh.msg;
  if (rng.bernoulli(p)) fn.combine_dim_idx = fresh.combine_dim_idx;
  if (rng.bernoulli(p)) fn.sample = fresh.sample;
  return fn;
}

double log10_operation_space_size(const SpaceConfig& cfg) {
  return static_cast<double>(cfg.num_positions) *
         std::log10(static_cast<double>(kNumOpTypes));
}

double log10_full_space_size(const SpaceConfig& cfg) {
  return static_cast<double>(cfg.num_positions) *
         std::log10(kOptionsPerPosition);
}

}  // namespace hg::hgnas
