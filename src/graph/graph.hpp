// graph.hpp — graph structures and graph-construction kernels.
//
// In point-cloud GNNs (DGCNN and everything HGNAS searches over) the graph
// is not given: it is *constructed* per layer by a Sample operation (KNN or
// random neighbour sampling). This module provides those kernels plus the
// COO/CSR containers the aggregation stage consumes.
//
// Edge convention: an edge (src -> dst) carries a message from neighbour
// `src` into centre node `dst`; aggregation reduces over incoming edges.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/rng.hpp"

namespace hg::graph {

/// Coordinate-format edge list. Parallel arrays; edge e is src[e] -> dst[e].
struct EdgeList {
  std::int64_t num_nodes = 0;
  std::vector<std::int64_t> src;
  std::vector<std::int64_t> dst;

  std::int64_t num_edges() const {
    return static_cast<std::int64_t>(src.size());
  }
  void add_edge(std::int64_t s, std::int64_t d) {
    src.push_back(s);
    dst.push_back(d);
  }
};

/// Compressed-sparse-row view grouped by destination node: the incoming
/// neighbours of node v are neighbors[row_ptr[v] .. row_ptr[v+1]).
struct Csr {
  std::int64_t num_nodes = 0;
  std::vector<std::int64_t> row_ptr;    // size num_nodes + 1
  std::vector<std::int64_t> neighbors;  // size num_edges (source nodes)

  std::int64_t num_edges() const {
    return static_cast<std::int64_t>(neighbors.size());
  }
  std::int64_t degree(std::int64_t v) const {
    return row_ptr[static_cast<std::size_t>(v + 1)] -
           row_ptr[static_cast<std::size_t>(v)];
  }
};

/// Group edges by destination. O(V + E), stable within each row.
Csr to_csr(const EdgeList& edges);

/// Exact k-nearest-neighbour graph over 3-D points by brute force
/// (O(N^2) distances, O(N k log k) selection). `points` is row-major
/// [n x 3]. Self-loops are excluded; if k >= n, every other point is a
/// neighbour. Edge direction: neighbour -> centre.
EdgeList knn_graph_brute(std::span<const float> points, std::int64_t n,
                         std::int64_t k);

/// KNN via a uniform spatial grid: points are binned into cells of width
/// equal to an estimated kth-neighbour radius, and the search expands in
/// cell rings until k candidates are guaranteed exact. Same output
/// contract as knn_graph_brute (ties may order differently).
EdgeList knn_graph_grid(std::span<const float> points, std::int64_t n,
                        std::int64_t k);

/// Default KNN used by models: grid when it pays off, brute otherwise.
EdgeList knn_graph(std::span<const float> points, std::int64_t n,
                   std::int64_t k);

/// Random-neighbour graph: each node draws k distinct neighbours uniformly
/// from the other nodes. This is the cheap `Sample = Random` alternative in
/// the HGNAS function space (no distance computation at all).
EdgeList random_graph(std::int64_t n, std::int64_t k, Rng& rng);

/// Feature-space KNN over arbitrary-dimension rows ([n x dim]); used when a
/// model reconstructs the graph dynamically from hidden features, as DGCNN
/// does in its deeper EdgeConv layers.
EdgeList knn_graph_features(std::span<const float> features, std::int64_t n,
                            std::int64_t dim, std::int64_t k);

/// Dataset-level properties encoded into the predictor's global node.
struct GraphProperties {
  std::int64_t num_nodes = 0;
  std::int64_t num_edges = 0;
  double density = 0.0;     // E / (V * (V - 1))
  double avg_degree = 0.0;  // E / V
  std::int64_t max_degree = 0;
  std::int64_t min_degree = 0;
};

GraphProperties compute_properties(const EdgeList& edges);

}  // namespace hg::graph
