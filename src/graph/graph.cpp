#include "graph/graph.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <unordered_map>

#include "core/parallel.hpp"
#include "core/simd.hpp"

namespace hg::graph {

namespace {

[[noreturn]] void fail(const std::string& msg) {
  throw std::invalid_argument("graph: " + msg);
}

void check(bool cond, const std::string& msg) {
  if (!cond) fail(msg);
}

float sq_dist3(const float* a, const float* b) {
  const float dx = a[0] - b[0], dy = a[1] - b[1], dz = a[2] - b[2];
  return dx * dx + dy * dy + dz * dz;
}

}  // namespace

Csr to_csr(const EdgeList& edges) {
  Csr csr;
  csr.num_nodes = edges.num_nodes;
  csr.row_ptr.assign(static_cast<std::size_t>(edges.num_nodes) + 1, 0);
  for (auto d : edges.dst) {
    check(d >= 0 && d < edges.num_nodes, "to_csr: dst out of range");
    ++csr.row_ptr[static_cast<std::size_t>(d) + 1];
  }
  std::partial_sum(csr.row_ptr.begin(), csr.row_ptr.end(),
                   csr.row_ptr.begin());
  csr.neighbors.resize(edges.src.size());
  std::vector<std::int64_t> cursor(csr.row_ptr.begin(),
                                   csr.row_ptr.end() - 1);
  for (std::size_t e = 0; e < edges.src.size(); ++e) {
    const auto s = edges.src[e];
    check(s >= 0 && s < edges.num_nodes, "to_csr: src out of range");
    csr.neighbors[static_cast<std::size_t>(
        cursor[static_cast<std::size_t>(edges.dst[e])]++)] = s;
  }
  return csr;
}

EdgeList knn_graph_brute(std::span<const float> points, std::int64_t n,
                         std::int64_t k) {
  check(n >= 0, "knn: negative n");
  check(static_cast<std::int64_t>(points.size()) == n * 3,
        "knn: points span must be n*3 floats");
  check(k > 0, "knn: k must be positive");
  EdgeList out;
  out.num_nodes = n;
  if (n <= 1) return out;
  const std::int64_t kk = std::min<std::int64_t>(k, n - 1);
  // Every node emits exactly kk edges, so each one owns a fixed slot range
  // of the preallocated edge arrays and the queries parallelise without any
  // ordering change.
  out.src.resize(static_cast<std::size_t>(n * kk));
  out.dst.resize(static_cast<std::size_t>(n * kk));

  // Coordinates split once into planes so the per-query distance pass
  // vectorizes over candidates (core/simd.hpp). Each dist[j] is the exact
  // dx*dx + dy*dy + dz*dz of the historical AoS sq_dist3, so the candidate
  // ordering (and thus the graph) is unchanged.
  std::vector<float> xs(static_cast<std::size_t>(n)),
      ys(static_cast<std::size_t>(n)), zs(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    xs[static_cast<std::size_t>(i)] = points[static_cast<std::size_t>(i * 3)];
    ys[static_cast<std::size_t>(i)] =
        points[static_cast<std::size_t>(i * 3 + 1)];
    zs[static_cast<std::size_t>(i)] =
        points[static_cast<std::size_t>(i * 3 + 2)];
  }

  core::parallel_for(
      0, n, std::max<std::int64_t>(1, (1 << 18) / n),
      [&](std::int64_t lo, std::int64_t hi) {
        std::vector<float> dist(static_cast<std::size_t>(n));
        std::vector<std::pair<float, std::int64_t>> cand(
            static_cast<std::size_t>(n - 1));
        for (std::int64_t i = lo; i < hi; ++i) {
          const float* pi = points.data() + i * 3;
          simd::sq_dist3(dist.data(), pi[0], pi[1], pi[2], xs.data(),
                         ys.data(), zs.data(), n);
          std::size_t c = 0;
          for (std::int64_t j = 0; j < n; ++j) {
            if (j == i) continue;
            cand[c++] = {dist[static_cast<std::size_t>(j)], j};
          }
          std::partial_sort(cand.begin(), cand.begin() + kk, cand.end());
          for (std::int64_t m = 0; m < kk; ++m) {
            out.src[static_cast<std::size_t>(i * kk + m)] =
                cand[static_cast<std::size_t>(m)].second;
            out.dst[static_cast<std::size_t>(i * kk + m)] = i;
          }
        }
      });
  return out;
}

EdgeList knn_graph_grid(std::span<const float> points, std::int64_t n,
                        std::int64_t k) {
  check(static_cast<std::int64_t>(points.size()) == n * 3,
        "knn: points span must be n*3 floats");
  check(k > 0, "knn: k must be positive");
  EdgeList out;
  out.num_nodes = n;
  if (n <= 1) return out;
  const std::int64_t kk = std::min<std::int64_t>(k, n - 1);

  // Bounding box.
  float lo[3] = {points[0], points[1], points[2]};
  float hi[3] = {points[0], points[1], points[2]};
  for (std::int64_t i = 1; i < n; ++i)
    for (int d = 0; d < 3; ++d) {
      lo[d] = std::min(lo[d], points[i * 3 + d]);
      hi[d] = std::max(hi[d], points[i * 3 + d]);
    }
  const float extent =
      std::max({hi[0] - lo[0], hi[1] - lo[1], hi[2] - lo[2], 1e-6f});
  // Cell size targets ~k points per cell assuming uniform density in a cube.
  const float density_side =
      extent / std::cbrt(static_cast<float>(n) /
                         std::max<float>(1.f, static_cast<float>(kk)));
  const float cell = std::max(density_side, extent / 64.f);
  const auto grid_dim = [&](int d) {
    return std::max<std::int64_t>(
        1, static_cast<std::int64_t>((hi[d] - lo[d]) / cell) + 1);
  };
  const std::int64_t gx = grid_dim(0), gy = grid_dim(1), gz = grid_dim(2);

  auto cell_of = [&](std::int64_t i, int d) {
    const float v = points[i * 3 + d] - lo[d];
    auto c = static_cast<std::int64_t>(v / cell);
    const std::int64_t g = d == 0 ? gx : (d == 1 ? gy : gz);
    return std::clamp<std::int64_t>(c, 0, g - 1);
  };
  auto flat = [&](std::int64_t cx, std::int64_t cy, std::int64_t cz) {
    return (cx * gy + cy) * gz + cz;
  };

  std::unordered_map<std::int64_t, std::vector<std::int64_t>> bins;
  bins.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i)
    bins[flat(cell_of(i, 0), cell_of(i, 1), cell_of(i, 2))].push_back(i);

  // Per-node slot buffers: queries run in parallel (the bins are read-only
  // once built), then a serial compaction re-emits the edges in exactly the
  // node-major order the sequential loop produced.
  std::vector<std::int64_t> slot_src(static_cast<std::size_t>(n * kk));
  std::vector<std::int64_t> taken(static_cast<std::size_t>(n), 0);

  core::parallel_for(
      0, n, std::max<std::int64_t>(1, 8192 / (kk + 1)),
      [&](std::int64_t lo, std::int64_t hi) {
        std::vector<std::pair<float, std::int64_t>> cand;
        for (std::int64_t i = lo; i < hi; ++i) {
          const float* pi = points.data() + i * 3;
          const std::int64_t cx = cell_of(i, 0), cy = cell_of(i, 1),
                             cz = cell_of(i, 2);
          cand.clear();
          // Expand rings of cells until the kth-best distance is provably
          // exact: all unexplored cells lie at distance > ring_inner_dist
          // >= kth-best.
          const std::int64_t max_ring = std::max({gx, gy, gz});
          for (std::int64_t ring = 0; ring <= max_ring; ++ring) {
            const bool had_enough =
                static_cast<std::int64_t>(cand.size()) >= kk;
            float kth = std::numeric_limits<float>::infinity();
            if (had_enough) {
              std::nth_element(
                  cand.begin(), cand.begin() + kk - 1, cand.end());
              kth = cand[static_cast<std::size_t>(kk - 1)].first;
              const float ring_inner = (static_cast<float>(ring) - 1.f) * cell;
              if (ring_inner > 0.f && ring_inner * ring_inner > kth) break;
            }
            for (std::int64_t dx = -ring; dx <= ring; ++dx)
              for (std::int64_t dy = -ring; dy <= ring; ++dy)
                for (std::int64_t dz = -ring; dz <= ring; ++dz) {
                  if (std::max({std::abs(dx), std::abs(dy), std::abs(dz)}) !=
                      ring)
                    continue;  // only the shell of this ring
                  const std::int64_t nx = cx + dx, ny = cy + dy, nz = cz + dz;
                  if (nx < 0 || nx >= gx || ny < 0 || ny >= gy || nz < 0 ||
                      nz >= gz)
                    continue;
                  auto it = bins.find(flat(nx, ny, nz));
                  if (it == bins.end()) continue;
                  for (auto j : it->second) {
                    if (j == i) continue;
                    cand.emplace_back(sq_dist3(pi, points.data() + j * 3), j);
                  }
                }
          }
          const std::int64_t take = std::min<std::int64_t>(
              kk, static_cast<std::int64_t>(cand.size()));
          std::partial_sort(cand.begin(), cand.begin() + take, cand.end());
          for (std::int64_t m = 0; m < take; ++m)
            slot_src[static_cast<std::size_t>(i * kk + m)] =
                cand[static_cast<std::size_t>(m)].second;
          taken[static_cast<std::size_t>(i)] = take;
        }
      });

  out.src.reserve(static_cast<std::size_t>(n * kk));
  out.dst.reserve(static_cast<std::size_t>(n * kk));
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t m = 0; m < taken[static_cast<std::size_t>(i)]; ++m)
      out.add_edge(slot_src[static_cast<std::size_t>(i * kk + m)], i);
  return out;
}

EdgeList knn_graph(std::span<const float> points, std::int64_t n,
                   std::int64_t k) {
  // The grid wins once N is large relative to k; the constant was measured
  // with bench_knn on this machine.
  if (n >= 512 && k <= n / 8) return knn_graph_grid(points, n, k);
  return knn_graph_brute(points, n, k);
}

EdgeList random_graph(std::int64_t n, std::int64_t k, Rng& rng) {
  check(n >= 0, "random_graph: negative n");
  check(k > 0, "random_graph: k must be positive");
  EdgeList out;
  out.num_nodes = n;
  if (n <= 1) return out;
  const std::int64_t kk = std::min<std::int64_t>(k, n - 1);
  out.src.reserve(static_cast<std::size_t>(n * kk));
  out.dst.reserve(static_cast<std::size_t>(n * kk));
  std::vector<std::int64_t> pool(static_cast<std::size_t>(n - 1));
  for (std::int64_t i = 0; i < n; ++i) {
    // Partial Fisher–Yates over the other n-1 nodes: draw kk distinct.
    std::size_t c = 0;
    for (std::int64_t j = 0; j < n; ++j)
      if (j != i) pool[c++] = j;
    for (std::int64_t m = 0; m < kk; ++m) {
      const auto pick = static_cast<std::size_t>(
          rng.uniform_int(static_cast<std::uint64_t>(n - 1 - m)));
      std::swap(pool[static_cast<std::size_t>(m)],
                pool[static_cast<std::size_t>(m) + pick]);
      out.add_edge(pool[static_cast<std::size_t>(m)], i);
    }
  }
  return out;
}

EdgeList knn_graph_features(std::span<const float> features, std::int64_t n,
                            std::int64_t dim, std::int64_t k) {
  check(static_cast<std::int64_t>(features.size()) == n * dim,
        "knn_features: span must be n*dim floats");
  check(k > 0 && dim > 0, "knn_features: k and dim must be positive");
  EdgeList out;
  out.num_nodes = n;
  if (n <= 1) return out;
  const std::int64_t kk = std::min<std::int64_t>(k, n - 1);
  out.src.resize(static_cast<std::size_t>(n * kk));
  out.dst.resize(static_cast<std::size_t>(n * kk));
  // Features transposed once to [dim, n] so each query accumulates its
  // squared distances to ALL candidates one dimension at a time — the
  // vector axis is the candidate axis, while each (i, j) pair still sums
  // (fi[d]-fj[d])^2 in ascending-d order exactly like the historical
  // per-pair loop, so every distance (and the graph) is bit-identical.
  std::vector<float> ft(static_cast<std::size_t>(dim * n));
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t d = 0; d < dim; ++d)
      ft[static_cast<std::size_t>(d * n + i)] =
          features[static_cast<std::size_t>(i * dim + d)];
  core::parallel_for(
      0, n, std::max<std::int64_t>(1, (1 << 18) / (n * dim)),
      [&](std::int64_t lo, std::int64_t hi) {
        std::vector<float> dist(static_cast<std::size_t>(n));
        std::vector<std::pair<float, std::int64_t>> cand(
            static_cast<std::size_t>(n - 1));
        for (std::int64_t i = lo; i < hi; ++i) {
          const float* fi = features.data() + i * dim;
          std::fill(dist.begin(), dist.end(), 0.f);
          for (std::int64_t d = 0; d < dim; ++d)
            simd::dist_accumulate(dist.data(), fi[d], ft.data() + d * n, n);
          std::size_t c = 0;
          for (std::int64_t j = 0; j < n; ++j) {
            if (j == i) continue;
            cand[c++] = {dist[static_cast<std::size_t>(j)], j};
          }
          std::partial_sort(cand.begin(), cand.begin() + kk, cand.end());
          for (std::int64_t m = 0; m < kk; ++m) {
            out.src[static_cast<std::size_t>(i * kk + m)] =
                cand[static_cast<std::size_t>(m)].second;
            out.dst[static_cast<std::size_t>(i * kk + m)] = i;
          }
        }
      });
  return out;
}

GraphProperties compute_properties(const EdgeList& edges) {
  GraphProperties p;
  p.num_nodes = edges.num_nodes;
  p.num_edges = edges.num_edges();
  if (edges.num_nodes > 1) {
    p.density = static_cast<double>(p.num_edges) /
                (static_cast<double>(p.num_nodes) *
                 static_cast<double>(p.num_nodes - 1));
  }
  if (edges.num_nodes > 0) {
    p.avg_degree =
        static_cast<double>(p.num_edges) / static_cast<double>(p.num_nodes);
    std::vector<std::int64_t> deg(static_cast<std::size_t>(edges.num_nodes),
                                  0);
    for (auto d : edges.dst) ++deg[static_cast<std::size_t>(d)];
    p.max_degree = *std::max_element(deg.begin(), deg.end());
    p.min_degree = *std::min_element(deg.begin(), deg.end());
  }
  return p;
}

}  // namespace hg::graph
