// nn.hpp — neural-network layers built on the tensor/autograd engine.
//
// A Module owns parameter Tensors and exposes them for optimisers and
// checkpointing. Layers are deliberately minimal: exactly what DGCNN, the
// HGNAS supernet and the latency predictor need.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "tensor/init.hpp"
#include "tensor/rng.hpp"
#include "tensor/tensor.hpp"

namespace hg::nn {

/// Base class: parameter registration + train/eval mode.
class Module {
 public:
  virtual ~Module() = default;

  /// All trainable parameters (shared handles — mutating them updates the
  /// module). Default implementation returns the registered list.
  virtual std::vector<Tensor> parameters() const { return params_; }

  virtual void set_training(bool training) { training_ = training; }
  bool training() const { return training_; }

  /// Total number of scalar parameters.
  std::int64_t num_parameters() const;

 protected:
  Tensor& register_parameter(Tensor t);

  std::vector<Tensor> params_;
  bool training_ = true;
};

/// Fully-connected layer: y = x W + b, Kaiming-initialised.
class Linear final : public Module {
 public:
  Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng,
         bool bias = true);

  Tensor forward(const Tensor& x) const;

  std::int64_t in_features() const { return in_features_; }
  std::int64_t out_features() const { return out_features_; }

 private:
  std::int64_t in_features_, out_features_;
  Tensor weight_;  // [in, out]
  Tensor bias_;    // [out] (empty handle if bias == false)
  bool has_bias_;
};

/// Batch normalisation over the row dimension of a [N, C] tensor
/// (momentum 0.1, eps 1e-5 like PyTorch).
///
/// In this library the "batch" is almost always the nodes/edges of a
/// single point cloud, whose statistics vary strongly between clouds
/// (random rotation/scale). Normalisation therefore always uses the
/// current batch statistics when the batch has more than one row —
/// graph-instance normalisation, deterministic at inference — and falls
/// back to the running estimates only for degenerate single-row batches.
/// Running statistics are updated in training mode only.
class BatchNorm1d final : public Module {
 public:
  explicit BatchNorm1d(std::int64_t num_features);

  Tensor forward(const Tensor& x);

  std::span<const float> running_mean() const { return running_mean_; }
  std::span<const float> running_var() const { return running_var_; }

 private:
  std::int64_t num_features_;
  Tensor gamma_, beta_;
  std::vector<float> running_mean_, running_var_;
  float momentum_ = 0.1f;
  float eps_ = 1e-5f;
};

enum class Activation { None, Relu, LeakyRelu };

/// Multi-layer perceptron: Linear (+ optional BatchNorm) + activation per
/// hidden layer; the final layer is linear with no activation by default.
class Mlp final : public Module {
 public:
  /// dims = {in, h1, ..., out}. `hidden_act` applies after every layer but
  /// the last; `final_act` after the last.
  Mlp(std::vector<std::int64_t> dims, Rng& rng,
      Activation hidden_act = Activation::Relu,
      Activation final_act = Activation::None, bool batch_norm = false,
      float leaky_slope = 0.01f);

  Tensor forward(const Tensor& x);

  std::vector<Tensor> parameters() const override;
  void set_training(bool training) override;

  std::size_t num_layers() const { return linears_.size(); }

 private:
  std::vector<std::unique_ptr<Linear>> linears_;
  std::vector<std::unique_ptr<BatchNorm1d>> norms_;  // empty if !batch_norm
  Activation hidden_act_, final_act_;
  float leaky_slope_;
};

Tensor apply_activation(const Tensor& x, Activation act, float leaky_slope);

// ---- metrics -----------------------------------------------------------------

/// Overall accuracy (fraction of correct predictions).
double overall_accuracy(std::span<const std::int64_t> pred,
                        std::span<const std::int64_t> label);

/// Balanced (macro-averaged per-class) accuracy — the paper's "mAcc".
double balanced_accuracy(std::span<const std::int64_t> pred,
                         std::span<const std::int64_t> label,
                         std::int64_t num_classes);

}  // namespace hg::nn
