#include "nn/nn.hpp"

#include <cmath>
#include <stdexcept>

namespace hg::nn {

std::int64_t Module::num_parameters() const {
  std::int64_t n = 0;
  for (const auto& p : parameters()) n += p.numel();
  return n;
}

Tensor& Module::register_parameter(Tensor t) {
  params_.push_back(std::move(t));
  return params_.back();
}

Linear::Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng,
               bool bias)
    : in_features_(in_features),
      out_features_(out_features),
      has_bias_(bias) {
  if (in_features <= 0 || out_features <= 0)
    throw std::invalid_argument("Linear: feature counts must be positive");
  weight_ = register_parameter(kaiming_normal(in_features, out_features, rng));
  if (has_bias_) bias_ = register_parameter(zeros_bias(out_features));
}

Tensor Linear::forward(const Tensor& x) const {
  if (x.dim() != 2 || x.shape()[1] != in_features_)
    throw std::invalid_argument(
        "Linear: input shape " + shape_to_string(x.shape()) +
        " incompatible with in_features=" + std::to_string(in_features_));
  Tensor y = matmul(x, weight_);
  if (has_bias_) y = add(y, bias_);
  return y;
}

BatchNorm1d::BatchNorm1d(std::int64_t num_features)
    : num_features_(num_features) {
  if (num_features <= 0)
    throw std::invalid_argument("BatchNorm1d: num_features must be positive");
  gamma_ = register_parameter(
      Tensor::ones({num_features}, /*requires_grad=*/true));
  beta_ = register_parameter(
      Tensor::zeros({num_features}, /*requires_grad=*/true));
  running_mean_.assign(static_cast<std::size_t>(num_features), 0.f);
  running_var_.assign(static_cast<std::size_t>(num_features), 1.f);
}

Tensor BatchNorm1d::forward(const Tensor& x) {
  if (x.dim() != 2 || x.shape()[1] != num_features_)
    throw std::invalid_argument(
        "BatchNorm1d: input shape " + shape_to_string(x.shape()) +
        " incompatible with num_features=" + std::to_string(num_features_));
  const std::int64_t n = x.shape()[0];
  if (n > 1) {
    Tensor mean = mean_axis(x, 0);                       // [C]
    Tensor centered = sub(x, mean);                      // [N,C]
    Tensor var = mean_axis(square(centered), 0);         // [C] (biased)
    Tensor std_ = sqrt_op(add(var, eps_));
    Tensor norm = div(centered, std_);
    if (training_) {
      // Update running stats outside the tape.
      const auto md = mean.data();
      const auto vd = var.data();
      for (std::int64_t c = 0; c < num_features_; ++c) {
        running_mean_[static_cast<std::size_t>(c)] =
            (1.f - momentum_) * running_mean_[static_cast<std::size_t>(c)] +
            momentum_ * md[c];
        running_var_[static_cast<std::size_t>(c)] =
            (1.f - momentum_) * running_var_[static_cast<std::size_t>(c)] +
            momentum_ * vd[c];
      }
    }
    return add(mul(norm, gamma_), beta_);
  }
  // Degenerate single-row batch: use running statistics.
  std::vector<float> inv_std(static_cast<std::size_t>(num_features_));
  for (std::int64_t c = 0; c < num_features_; ++c)
    inv_std[static_cast<std::size_t>(c)] =
        1.f / std::sqrt(running_var_[static_cast<std::size_t>(c)] + eps_);
  Tensor mean_t = Tensor::from_vector(
      {num_features_},
      std::vector<float>(running_mean_.begin(), running_mean_.end()));
  Tensor inv_t = Tensor::from_vector({num_features_}, std::move(inv_std));
  Tensor norm = mul(sub(x, mean_t), inv_t);
  return add(mul(norm, gamma_), beta_);
}

Tensor apply_activation(const Tensor& x, Activation act, float leaky_slope) {
  switch (act) {
    case Activation::None: return x;
    case Activation::Relu: return relu(x);
    case Activation::LeakyRelu: return leaky_relu(x, leaky_slope);
  }
  return x;
}

Mlp::Mlp(std::vector<std::int64_t> dims, Rng& rng, Activation hidden_act,
         Activation final_act, bool batch_norm, float leaky_slope)
    : hidden_act_(hidden_act),
      final_act_(final_act),
      leaky_slope_(leaky_slope) {
  if (dims.size() < 2)
    throw std::invalid_argument("Mlp: need at least {in, out} dims");
  for (std::size_t i = 0; i + 1 < dims.size(); ++i) {
    linears_.push_back(std::make_unique<Linear>(dims[i], dims[i + 1], rng));
    const bool is_last = (i + 2 == dims.size());
    if (batch_norm && !is_last)
      norms_.push_back(std::make_unique<BatchNorm1d>(dims[i + 1]));
  }
}

Tensor Mlp::forward(const Tensor& x) {
  Tensor h = x;
  for (std::size_t i = 0; i < linears_.size(); ++i) {
    h = linears_[i]->forward(h);
    const bool is_last = (i + 1 == linears_.size());
    if (!is_last && i < norms_.size()) h = norms_[i]->forward(h);
    h = apply_activation(h, is_last ? final_act_ : hidden_act_, leaky_slope_);
  }
  return h;
}

std::vector<Tensor> Mlp::parameters() const {
  std::vector<Tensor> out;
  for (const auto& l : linears_)
    for (auto& p : l->parameters()) out.push_back(p);
  for (const auto& n : norms_)
    for (auto& p : n->parameters()) out.push_back(p);
  return out;
}

void Mlp::set_training(bool training) {
  Module::set_training(training);
  for (auto& l : linears_) l->set_training(training);
  for (auto& n : norms_) n->set_training(training);
}

double overall_accuracy(std::span<const std::int64_t> pred,
                        std::span<const std::int64_t> label) {
  if (pred.size() != label.size())
    throw std::invalid_argument("overall_accuracy: size mismatch");
  if (pred.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < pred.size(); ++i)
    if (pred[i] == label[i]) ++correct;
  return static_cast<double>(correct) / static_cast<double>(pred.size());
}

double balanced_accuracy(std::span<const std::int64_t> pred,
                         std::span<const std::int64_t> label,
                         std::int64_t num_classes) {
  if (pred.size() != label.size())
    throw std::invalid_argument("balanced_accuracy: size mismatch");
  if (num_classes <= 0)
    throw std::invalid_argument("balanced_accuracy: bad num_classes");
  std::vector<std::int64_t> correct(static_cast<std::size_t>(num_classes), 0);
  std::vector<std::int64_t> total(static_cast<std::size_t>(num_classes), 0);
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const auto y = label[i];
    if (y < 0 || y >= num_classes)
      throw std::invalid_argument("balanced_accuracy: label out of range");
    ++total[static_cast<std::size_t>(y)];
    if (pred[i] == y) ++correct[static_cast<std::size_t>(y)];
  }
  double acc = 0.0;
  std::int64_t present = 0;
  for (std::int64_t c = 0; c < num_classes; ++c) {
    if (total[static_cast<std::size_t>(c)] == 0) continue;
    ++present;
    acc += static_cast<double>(correct[static_cast<std::size_t>(c)]) /
           static_cast<double>(total[static_cast<std::size_t>(c)]);
  }
  return present > 0 ? acc / static_cast<double>(present) : 0.0;
}

}  // namespace hg::nn
