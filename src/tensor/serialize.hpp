// serialize.hpp — binary checkpointing of parameter lists.
//
// Format: magic "HGT1", u64 tensor count, then per tensor:
// u64 rank, i64 dims..., f32 data...  Little-endian host order (this project
// only targets x86-64 Linux).
#pragma once

#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace hg {

/// Write parameters to `path`. Throws std::runtime_error on I/O failure.
void save_tensors(const std::string& path, const std::vector<Tensor>& tensors);

/// Read parameters from `path` into the given (pre-shaped) tensors in order.
/// Shapes must match what was saved; throws otherwise.
void load_tensors(const std::string& path, std::vector<Tensor>& tensors);

}  // namespace hg
