#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <unordered_set>

#include "core/parallel.hpp"
#include "core/simd.hpp"
#include "tensor/rng.hpp"

namespace hg {

namespace {

thread_local bool g_grad_enabled = true;

// Parallel grain sizes. Every parallel kernel in this file keeps the
// per-output-element arithmetic order identical to its serial loop, so the
// results are bit-for-bit independent of the thread count; grains only
// decide when forking is worth the synchronisation cost. The tiny tensors
// of the CPU-scale training pipeline stay below these cutoffs and run the
// plain serial loops inline.
constexpr std::int64_t kElemGrain = 1 << 15;  // elementwise ops
constexpr std::int64_t kWorkGrain = 1 << 18;  // ~flops per scheduled chunk

/// Rows per chunk for a row-parallel kernel doing `work_per_row` flops.
std::int64_t row_grain(std::int64_t work_per_row) {
  return std::max<std::int64_t>(
      1, kWorkGrain / std::max<std::int64_t>(1, work_per_row));
}

[[noreturn]] void fail(const std::string& msg) {
  throw std::invalid_argument("tensor: " + msg);
}

void check(bool cond, const std::string& msg) {
  if (!cond) fail(msg);
}

using Impl = detail::TensorImpl;
using ImplPtr = std::shared_ptr<Impl>;

ImplPtr make_impl(Shape shape, std::vector<float> data) {
  auto impl = std::make_shared<Impl>();
  impl->shape = std::move(shape);
  impl->data = std::move(data);
  return impl;
}

/// Build an op result: decides requires_grad from parents and records the
/// tape edge only when autograd is enabled and some parent needs gradients.
Tensor make_op(Shape shape, std::vector<float> data,
               std::vector<Tensor> parents,
               std::function<void(Impl&)> backward_fn) {
  auto impl = make_impl(std::move(shape), std::move(data));
  bool needs = false;
  if (detail::grad_enabled()) {
    for (const auto& p : parents) {
      if (p.impl()->requires_grad) needs = true;
    }
  }
  if (needs) {
    impl->requires_grad = true;
    impl->parents.reserve(parents.size());
    for (auto& p : parents) impl->parents.push_back(p.impl());
    impl->backward_fn = std::move(backward_fn);
  }
  return Tensor(std::move(impl));
}

// ---- raw (tape-free) kernels used inside backward closures -----------------

// Matmul kernels: row-parallel and cache-blocked, with the inner axpy over
// output columns vectorized (core/simd.hpp). Each output element accumulates
// its k terms in ascending-p order exactly like the historical naive triple
// loop, so the blocked/parallel/SIMD kernels are bit-for-bit identical to it
// for any thread count — the vector axis is the output axis, never the
// reduction axis. The i-block keeps a handful of output rows hot while one
// row of b streams through, cutting b reloads by the block factor.
constexpr std::int64_t kMatmulRowBlock = 4;

void raw_matmul(const float* a, const float* b, float* c, std::int64_t m,
                std::int64_t k, std::int64_t n) {
  core::parallel_for(
      0, m, row_grain(k * n), [=](std::int64_t lo, std::int64_t hi) {
        std::fill(c + lo * n, c + hi * n, 0.f);
        for (std::int64_t i0 = lo; i0 < hi; i0 += kMatmulRowBlock) {
          const std::int64_t i1 =
              std::min<std::int64_t>(hi, i0 + kMatmulRowBlock);
          for (std::int64_t p = 0; p < k; ++p) {
            const float* brow = b + p * n;
            for (std::int64_t i = i0; i < i1; ++i) {
              const float av = a[i * k + p];
              if (av == 0.f) continue;
              simd::axpy(c + i * n, av, brow, n);
            }
          }
        }
      });
}

// c[m,n] += a^T[m,k_rows] ... specialised transposed products for backward.
void raw_matmul_at_b(const float* a, const float* b, float* c, std::int64_t m,
                     std::int64_t k, std::int64_t n) {
  // a is [k, m] (we want a^T @ b), b is [k, n], c is [m, n]. Parallel over
  // output rows i (columns of a); p ascends per element as in the serial
  // p-outer loop, so results are unchanged.
  core::parallel_for(
      0, m, row_grain(k * n), [=](std::int64_t lo, std::int64_t hi) {
        std::fill(c + lo * n, c + hi * n, 0.f);
        for (std::int64_t p = 0; p < k; ++p) {
          const float* arow = a + p * m;
          const float* brow = b + p * n;
          for (std::int64_t i = lo; i < hi; ++i) {
            const float av = arow[i];
            if (av == 0.f) continue;
            simd::axpy(c + i * n, av, brow, n);
          }
        }
      });
}

void raw_matmul_a_bt(const float* a, const float* b, float* c, std::int64_t m,
                     std::int64_t k, std::int64_t n) {
  // a is [m, k], b is [n, k] (we want a @ b^T), c is [m, n]. The historical
  // kernel took a per-(i,j) dot product — a reduction along the vector-
  // hostile axis. Transposing b once into [k, n] scratch turns the inner
  // loop into the same axpy-over-output-columns shape as raw_matmul: c[i,j]
  // still accumulates its k terms in ascending-p order starting from 0, so
  // every output element is bit-identical to the old dot (no zero-skip here,
  // because the old kernel had none).
  std::vector<float> bt(static_cast<std::size_t>(k * n));
  core::parallel_for(
      0, n, row_grain(k), [&, bt_data = bt.data()](std::int64_t lo,
                                                   std::int64_t hi) {
        for (std::int64_t j = lo; j < hi; ++j)
          for (std::int64_t p = 0; p < k; ++p)
            bt_data[p * n + j] = b[j * k + p];
      });
  const float* btd = bt.data();
  core::parallel_for(
      0, m, row_grain(k * n), [=](std::int64_t lo, std::int64_t hi) {
        std::fill(c + lo * n, c + hi * n, 0.f);
        for (std::int64_t i0 = lo; i0 < hi; i0 += kMatmulRowBlock) {
          const std::int64_t i1 =
              std::min<std::int64_t>(hi, i0 + kMatmulRowBlock);
          for (std::int64_t p = 0; p < k; ++p) {
            const float* brow = btd + p * n;
            for (std::int64_t i = i0; i < i1; ++i)
              simd::axpy(c + i * n, a[i * k + p], brow, n);
          }
        }
      });
}

enum class BinOp { Add, Sub, Mul, Div };

enum class Broadcast { Exact, ScalarRhs, RowRhs, ColRhs };

Broadcast classify_broadcast(const Shape& a, const Shape& b) {
  if (a == b) return Broadcast::Exact;
  if (shape_numel(b) == 1) return Broadcast::ScalarRhs;
  if (a.size() == 2 && b.size() == 1 && b[0] == a[1]) return Broadcast::RowRhs;
  if (a.size() == 2 && b.size() == 2 && b[0] == a[0] && b[1] == 1)
    return Broadcast::ColRhs;
  fail("incompatible shapes for broadcast: " + shape_to_string(a) + " vs " +
       shape_to_string(b));
}

float apply_bin(BinOp op, float x, float y) {
  switch (op) {
    case BinOp::Add: return x + y;
    case BinOp::Sub: return x - y;
    case BinOp::Mul: return x * y;
    case BinOp::Div: return x / y;
  }
  return 0.f;
}

Tensor binary_op(const Tensor& a, const Tensor& b, BinOp op) {
  const Broadcast bc = classify_broadcast(a.shape(), b.shape());
  const auto& ad = a.data();
  const auto& bd = b.data();
  const std::int64_t n = a.numel();
  std::vector<float> out(static_cast<std::size_t>(n));

  const std::int64_t cols = (a.dim() == 2) ? a.shape()[1] : n;
  // Captured by value: this lambda outlives binary_op inside the backward
  // closure below.
  auto rhs_index = [bc, cols](std::int64_t i) -> std::int64_t {
    switch (bc) {
      case Broadcast::Exact: return i;
      case Broadcast::ScalarRhs: return 0;
      case Broadcast::RowRhs: return i % cols;
      case Broadcast::ColRhs: return i / cols;
    }
    return 0;
  };

  {
    const float* ap = ad.data();
    const float* bp = bd.data();
    float* op_ = out.data();
    core::parallel_for(0, n, kElemGrain,
                       [&](std::int64_t lo, std::int64_t hi) {
                         for (std::int64_t i = lo; i < hi; ++i)
                           op_[i] = apply_bin(op, ap[i], bp[rhs_index(i)]);
                       });
  }

  // Capture everything the backward pass needs by value.
  std::vector<float> a_copy(ad.begin(), ad.end());
  std::vector<float> b_copy(bd.begin(), bd.end());
  auto backward = [op, bc, cols, n, a_copy = std::move(a_copy),
                   b_copy = std::move(b_copy),
                   rhs_index](Impl& self) {
    auto& g = self.grad;
    Impl& pa = *self.parents[0];
    Impl& pb = *self.parents[1];
    if (pa.requires_grad) {
      std::vector<float> ga(static_cast<std::size_t>(n));
      core::parallel_for(0, n, kElemGrain,
                         [&](std::int64_t lo, std::int64_t hi) {
                           for (std::int64_t i = lo; i < hi; ++i) {
                             const float gi = g[static_cast<std::size_t>(i)];
                             switch (op) {
                               case BinOp::Add:
                               case BinOp::Sub: ga[i] = gi; break;
                               case BinOp::Mul:
                                 ga[i] = gi * b_copy[rhs_index(i)];
                                 break;
                               case BinOp::Div:
                                 ga[i] = gi / b_copy[rhs_index(i)];
                                 break;
                             }
                           }
                         });
      pa.accumulate_grad(ga);
    }
    if (pb.requires_grad) {
      std::vector<float> gb(b_copy.size(), 0.f);
      auto accumulate_range = [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) {
          const float gi = g[static_cast<std::size_t>(i)];
          const std::int64_t j = rhs_index(i);
          float contrib = 0.f;
          switch (op) {
            case BinOp::Add: contrib = gi; break;
            case BinOp::Sub: contrib = -gi; break;
            case BinOp::Mul:
              contrib = gi * a_copy[static_cast<std::size_t>(i)];
              break;
            case BinOp::Div: {
              const float bv = b_copy[static_cast<std::size_t>(j)];
              contrib = -gi * a_copy[static_cast<std::size_t>(i)] / (bv * bv);
              break;
            }
          }
          gb[static_cast<std::size_t>(j)] += contrib;
        }
      };
      if (bc == Broadcast::Exact) {
        // rhs_index(i) == i: disjoint writes, safe to fork.
        core::parallel_for(0, n, kElemGrain, accumulate_range);
      } else {
        // Broadcast cases reduce many i into one j; keep the serial order.
        accumulate_range(0, n);
      }
      pb.accumulate_grad(gb);
    }
    (void)bc;
    (void)cols;
  };

  return make_op(a.shape(), std::move(out), {a, b}, std::move(backward));
}

/// Unary op with pointwise derivative expressed from (x, y).
Tensor unary_op(const Tensor& a, const std::function<float(float)>& f,
                const std::function<float(float, float)>& dfdx_from_xy) {
  const auto ad = a.data();
  std::vector<float> out(ad.size());
  core::parallel_for(0, static_cast<std::int64_t>(ad.size()), kElemGrain,
                     [&](std::int64_t lo, std::int64_t hi) {
                       for (std::int64_t i = lo; i < hi; ++i)
                         out[static_cast<std::size_t>(i)] = f(ad[i]);
                     });
  std::vector<float> x_copy(ad.begin(), ad.end());
  std::vector<float> y_copy = out;
  auto backward = [x_copy = std::move(x_copy), y_copy = std::move(y_copy),
                   dfdx_from_xy](Impl& self) {
    Impl& p = *self.parents[0];
    if (!p.requires_grad) return;
    std::vector<float> g(x_copy.size());
    core::parallel_for(0, static_cast<std::int64_t>(x_copy.size()), kElemGrain,
                       [&](std::int64_t lo, std::int64_t hi) {
                         for (std::int64_t i = lo; i < hi; ++i)
                           g[static_cast<std::size_t>(i)] =
                               self.grad[static_cast<std::size_t>(i)] *
                               dfdx_from_xy(x_copy[static_cast<std::size_t>(i)],
                                            y_copy[static_cast<std::size_t>(i)]);
                       });
    p.accumulate_grad(g);
  };
  return make_op(a.shape(), std::move(out), {a}, std::move(backward));
}

}  // namespace

// ---- shape helpers ----------------------------------------------------------

std::int64_t shape_numel(const Shape& shape) {
  std::int64_t n = 1;
  for (auto d : shape) {
    if (d < 0) fail("negative dimension in shape " + shape_to_string(shape));
    n *= d;
  }
  return n;
}

std::string shape_to_string(const Shape& shape) {
  std::string s = "[";
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i) s += ", ";
    s += std::to_string(shape[i]);
  }
  return s + "]";
}

// ---- detail -----------------------------------------------------------------

namespace detail {

void TensorImpl::ensure_grad() {
  if (grad.size() != data.size()) grad.assign(data.size(), 0.f);
}

void TensorImpl::accumulate_grad(std::span<const float> g) {
  if (g.size() != data.size())
    fail("gradient size mismatch: " + std::to_string(g.size()) + " vs " +
         std::to_string(data.size()));
  ensure_grad();
  for (std::size_t i = 0; i < g.size(); ++i) grad[i] += g[i];
}

Tensor make_custom_op(Shape shape, std::vector<float> data,
                      std::vector<Tensor> parents,
                      std::function<void(TensorImpl&)> backward_fn) {
  return make_op(std::move(shape), std::move(data), std::move(parents),
                 std::move(backward_fn));
}

NoGradGuard::NoGradGuard() : prev_(g_grad_enabled) { g_grad_enabled = false; }
NoGradGuard::~NoGradGuard() { g_grad_enabled = prev_; }

bool grad_enabled() { return g_grad_enabled; }

}  // namespace detail

// ---- Tensor -------------------------------------------------------------------

Tensor::Tensor() : impl_(make_impl({}, {0.f})) {}

Tensor Tensor::zeros(Shape shape, bool requires_grad) {
  return full(std::move(shape), 0.f, requires_grad);
}

Tensor Tensor::ones(Shape shape, bool requires_grad) {
  return full(std::move(shape), 1.f, requires_grad);
}

Tensor Tensor::full(Shape shape, float value, bool requires_grad) {
  const auto n = shape_numel(shape);
  auto impl = make_impl(std::move(shape),
                        std::vector<float>(static_cast<std::size_t>(n), value));
  impl->requires_grad = requires_grad;
  return Tensor(std::move(impl));
}

Tensor Tensor::scalar(float value, bool requires_grad) {
  return full({}, value, requires_grad);
}

Tensor Tensor::from_vector(Shape shape, std::vector<float> values,
                           bool requires_grad) {
  check(static_cast<std::int64_t>(values.size()) == shape_numel(shape),
        "from_vector: " + std::to_string(values.size()) +
            " values do not fill shape " + shape_to_string(shape));
  auto impl = make_impl(std::move(shape), std::move(values));
  impl->requires_grad = requires_grad;
  return Tensor(std::move(impl));
}

Tensor Tensor::randn(Shape shape, Rng& rng, float mean, float stddev,
                     bool requires_grad) {
  const auto n = shape_numel(shape);
  std::vector<float> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = rng.normal(mean, stddev);
  return from_vector(std::move(shape), std::move(v), requires_grad);
}

Tensor Tensor::rand_uniform(Shape shape, Rng& rng, float lo, float hi,
                            bool requires_grad) {
  const auto n = shape_numel(shape);
  std::vector<float> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = rng.uniform(lo, hi);
  return from_vector(std::move(shape), std::move(v), requires_grad);
}

std::int64_t Tensor::size(std::int64_t axis) const {
  check(axis >= 0 && axis < dim(), "size(): axis out of range");
  return impl_->shape[static_cast<std::size_t>(axis)];
}

float Tensor::item() const {
  check(numel() == 1, "item(): tensor has " + std::to_string(numel()) +
                          " elements, expected 1");
  return impl_->data[0];
}

float Tensor::at(std::initializer_list<std::int64_t> idx) const {
  check(static_cast<std::int64_t>(idx.size()) == dim(),
        "at(): rank mismatch");
  std::int64_t flat = 0;
  std::size_t axis = 0;
  for (auto i : idx) {
    const auto d = impl_->shape[axis];
    check(i >= 0 && i < d, "at(): index out of range");
    flat = flat * d + i;
    ++axis;
  }
  return impl_->data[static_cast<std::size_t>(flat)];
}

Tensor& Tensor::set_requires_grad(bool v) {
  impl_->requires_grad = v;
  return *this;
}

void Tensor::zero_grad() {
  std::fill(impl_->grad.begin(), impl_->grad.end(), 0.f);
}

Tensor Tensor::detach() const {
  auto impl = make_impl(impl_->shape, impl_->data);
  return Tensor(std::move(impl));
}

Tensor Tensor::clone() const {
  auto impl = make_impl(impl_->shape, impl_->data);
  impl->requires_grad = impl_->requires_grad;
  return Tensor(std::move(impl));
}

void Tensor::backward() {
  check(numel() == 1,
        "backward() without a seed requires a scalar tensor; got shape " +
            shape_to_string(shape()));
  backward(std::vector<float>{1.f});
}

void Tensor::backward(std::span<const float> seed) {
  check(static_cast<std::int64_t>(seed.size()) == numel(),
        "backward(): seed size mismatch");
  // Iterative post-order DFS to topologically sort the tape.
  std::vector<Impl*> order;
  std::unordered_set<Impl*> visited;
  std::vector<std::pair<Impl*, std::size_t>> stack;
  stack.emplace_back(impl_.get(), 0);
  visited.insert(impl_.get());
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    if (next_child < node->parents.size()) {
      Impl* child = node->parents[next_child].get();
      ++next_child;
      if (child->requires_grad && !visited.count(child)) {
        visited.insert(child);
        stack.emplace_back(child, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }
  impl_->accumulate_grad(seed);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Impl* node = *it;
    if (node->backward_fn && !node->grad.empty()) {
      node->backward_fn(*node);
      // Non-leaf grads are consumed once propagated; this keeps repeated
      // backward() calls additive (PyTorch semantics) instead of
      // re-propagating previously accumulated seeds.
      node->grad.clear();
    }
  }
}

// ---- binary ops -----------------------------------------------------------------

Tensor add(const Tensor& a, const Tensor& b) { return binary_op(a, b, BinOp::Add); }
Tensor sub(const Tensor& a, const Tensor& b) { return binary_op(a, b, BinOp::Sub); }
Tensor mul(const Tensor& a, const Tensor& b) { return binary_op(a, b, BinOp::Mul); }
Tensor div(const Tensor& a, const Tensor& b) { return binary_op(a, b, BinOp::Div); }

Tensor add(const Tensor& a, float s) { return add(a, Tensor::scalar(s)); }
Tensor sub(const Tensor& a, float s) { return sub(a, Tensor::scalar(s)); }
Tensor mul(const Tensor& a, float s) { return mul(a, Tensor::scalar(s)); }
Tensor div(const Tensor& a, float s) {
  check(s != 0.f, "division by zero scalar");
  return div(a, Tensor::scalar(s));
}

Tensor neg(const Tensor& a) {
  return unary_op(a, [](float x) { return -x; },
                  [](float, float) { return -1.f; });
}

// ---- unary ops ------------------------------------------------------------------

Tensor relu(const Tensor& a) {
  return unary_op(a, [](float x) { return x > 0.f ? x : 0.f; },
                  [](float x, float) { return x > 0.f ? 1.f : 0.f; });
}

Tensor leaky_relu(const Tensor& a, float negative_slope) {
  return unary_op(
      a,
      [negative_slope](float x) { return x > 0.f ? x : negative_slope * x; },
      [negative_slope](float x, float) {
        return x > 0.f ? 1.f : negative_slope;
      });
}

Tensor sigmoid(const Tensor& a) {
  return unary_op(a,
                  [](float x) { return 1.f / (1.f + std::exp(-x)); },
                  [](float, float y) { return y * (1.f - y); });
}

Tensor tanh_op(const Tensor& a) {
  return unary_op(a, [](float x) { return std::tanh(x); },
                  [](float, float y) { return 1.f - y * y; });
}

Tensor exp_op(const Tensor& a) {
  return unary_op(a, [](float x) { return std::exp(x); },
                  [](float, float y) { return y; });
}

Tensor log_op(const Tensor& a) {
  for (float x : a.data())
    check(x > 0.f, "log of non-positive value " + std::to_string(x));
  return unary_op(a, [](float x) { return std::log(x); },
                  [](float x, float) { return 1.f / x; });
}

Tensor sqrt_op(const Tensor& a) {
  for (float x : a.data())
    check(x >= 0.f, "sqrt of negative value " + std::to_string(x));
  return unary_op(a, [](float x) { return std::sqrt(x); },
                  [](float, float y) { return y > 0.f ? 0.5f / y : 0.f; });
}

Tensor square(const Tensor& a) {
  return unary_op(a, [](float x) { return x * x; },
                  [](float x, float) { return 2.f * x; });
}

Tensor abs_op(const Tensor& a) {
  return unary_op(a, [](float x) { return std::fabs(x); },
                  [](float x, float) { return x > 0.f ? 1.f : (x < 0.f ? -1.f : 0.f); });
}

// ---- matmul / transpose -----------------------------------------------------------

Tensor matmul(const Tensor& a, const Tensor& b) {
  check(a.dim() == 2 && b.dim() == 2, "matmul requires 2-D tensors, got " +
                                          shape_to_string(a.shape()) + " x " +
                                          shape_to_string(b.shape()));
  const std::int64_t m = a.shape()[0], k = a.shape()[1];
  const std::int64_t k2 = b.shape()[0], n = b.shape()[1];
  check(k == k2, "matmul inner dimension mismatch: " +
                     shape_to_string(a.shape()) + " x " +
                     shape_to_string(b.shape()));
  std::vector<float> out(static_cast<std::size_t>(m * n));
  raw_matmul(a.data().data(), b.data().data(), out.data(), m, k, n);

  std::vector<float> a_copy(a.data().begin(), a.data().end());
  std::vector<float> b_copy(b.data().begin(), b.data().end());
  auto backward = [m, k, n, a_copy = std::move(a_copy),
                   b_copy = std::move(b_copy)](Impl& self) {
    Impl& pa = *self.parents[0];
    Impl& pb = *self.parents[1];
    if (pa.requires_grad) {
      std::vector<float> ga(static_cast<std::size_t>(m * k));
      raw_matmul_a_bt(self.grad.data(), b_copy.data(), ga.data(), m, n, k);
      pa.accumulate_grad(ga);
    }
    if (pb.requires_grad) {
      std::vector<float> gb(static_cast<std::size_t>(k * n));
      raw_matmul_at_b(a_copy.data(), self.grad.data(), gb.data(), k, m, n);
      pb.accumulate_grad(gb);
    }
  };
  return make_op({m, n}, std::move(out), {a, b}, std::move(backward));
}

namespace {

/// Blocked 2-D transpose: dst[j * r + i] = src[i * c + j]. Square tiles
/// keep both the row-major reads and the column-major writes inside one
/// cache line's worth of rows, instead of striding the full output per
/// element. Pure permutation, so exact for any tiling / thread count.
void raw_transpose(const float* src, float* dst, std::int64_t r,
                   std::int64_t c) {
  constexpr std::int64_t kTile = 32;
  const std::int64_t row_tiles = (r + kTile - 1) / kTile;
  core::parallel_for(
      0, row_tiles, row_grain(kTile * c), [=](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t bi = lo; bi < hi; ++bi) {
          const std::int64_t i0 = bi * kTile;
          const std::int64_t i1 = std::min<std::int64_t>(r, i0 + kTile);
          for (std::int64_t j0 = 0; j0 < c; j0 += kTile) {
            const std::int64_t j1 = std::min<std::int64_t>(c, j0 + kTile);
            for (std::int64_t i = i0; i < i1; ++i)
              for (std::int64_t j = j0; j < j1; ++j)
                dst[j * r + i] = src[i * c + j];
          }
        }
      });
}

}  // namespace

Tensor transpose(const Tensor& a) {
  check(a.dim() == 2, "transpose requires a 2-D tensor");
  const std::int64_t r = a.shape()[0], c = a.shape()[1];
  std::vector<float> out(static_cast<std::size_t>(r * c));
  raw_transpose(a.data().data(), out.data(), r, c);
  auto backward = [r, c](Impl& self) {
    Impl& p = *self.parents[0];
    if (!p.requires_grad) return;
    std::vector<float> g(static_cast<std::size_t>(r * c));
    // The gradient of a transpose is the transpose of the gradient
    // ([c, r] -> [r, c]).
    raw_transpose(self.grad.data(), g.data(), c, r);
    p.accumulate_grad(g);
  };
  return make_op({c, r}, std::move(out), {a}, std::move(backward));
}

// ---- reductions --------------------------------------------------------------------

Tensor sum_all(const Tensor& a) {
  float acc = 0.f;
  for (float x : a.data()) acc += x;
  const std::int64_t n = a.numel();
  auto backward = [n](Impl& self) {
    Impl& p = *self.parents[0];
    if (!p.requires_grad) return;
    std::vector<float> g(static_cast<std::size_t>(n), self.grad[0]);
    p.accumulate_grad(g);
  };
  return make_op({}, {acc}, {a}, std::move(backward));
}

Tensor mean_all(const Tensor& a) {
  check(a.numel() > 0, "mean of empty tensor");
  return div(sum_all(a), static_cast<float>(a.numel()));
}

Tensor sum_axis(const Tensor& a, int axis) {
  check(a.dim() == 2, "sum_axis requires a 2-D tensor");
  check(axis == 0 || axis == 1, "sum_axis: axis must be 0 or 1");
  const std::int64_t r = a.shape()[0], c = a.shape()[1];
  const auto ad = a.data();
  if (axis == 0) {
    std::vector<float> out(static_cast<std::size_t>(c), 0.f);
    for (std::int64_t i = 0; i < r; ++i)
      for (std::int64_t j = 0; j < c; ++j) out[j] += ad[i * c + j];
    auto backward = [r, c](Impl& self) {
      Impl& p = *self.parents[0];
      if (!p.requires_grad) return;
      std::vector<float> g(static_cast<std::size_t>(r * c));
      for (std::int64_t i = 0; i < r; ++i)
        for (std::int64_t j = 0; j < c; ++j)
          g[i * c + j] = self.grad[static_cast<std::size_t>(j)];
      p.accumulate_grad(g);
    };
    return make_op({c}, std::move(out), {a}, std::move(backward));
  }
  std::vector<float> out(static_cast<std::size_t>(r), 0.f);
  for (std::int64_t i = 0; i < r; ++i)
    for (std::int64_t j = 0; j < c; ++j) out[i] += ad[i * c + j];
  auto backward = [r, c](Impl& self) {
    Impl& p = *self.parents[0];
    if (!p.requires_grad) return;
    std::vector<float> g(static_cast<std::size_t>(r * c));
    for (std::int64_t i = 0; i < r; ++i)
      for (std::int64_t j = 0; j < c; ++j)
        g[i * c + j] = self.grad[static_cast<std::size_t>(i)];
    p.accumulate_grad(g);
  };
  return make_op({r}, std::move(out), {a}, std::move(backward));
}

Tensor mean_axis(const Tensor& a, int axis) {
  const float denom =
      static_cast<float>(axis == 0 ? a.shape()[0] : a.shape()[1]);
  check(denom > 0.f, "mean_axis over empty axis");
  return div(sum_axis(a, axis), denom);
}

namespace {

Tensor extreme_axis0(const Tensor& a, bool is_max) {
  check(a.dim() == 2, "max/min_axis0 requires a 2-D tensor");
  const std::int64_t r = a.shape()[0], c = a.shape()[1];
  check(r > 0, "max/min_axis0 over empty axis");
  const auto ad = a.data();
  std::vector<float> out(static_cast<std::size_t>(c));
  std::vector<std::int64_t> arg(static_cast<std::size_t>(c), 0);
  for (std::int64_t j = 0; j < c; ++j) {
    float best = ad[j];
    std::int64_t bi = 0;
    for (std::int64_t i = 1; i < r; ++i) {
      const float v = ad[i * c + j];
      if (is_max ? (v > best) : (v < best)) {
        best = v;
        bi = i;
      }
    }
    out[static_cast<std::size_t>(j)] = best;
    arg[static_cast<std::size_t>(j)] = bi;
  }
  auto backward = [r, c, arg = std::move(arg)](Impl& self) {
    Impl& p = *self.parents[0];
    if (!p.requires_grad) return;
    std::vector<float> g(static_cast<std::size_t>(r * c), 0.f);
    for (std::int64_t j = 0; j < c; ++j)
      g[arg[static_cast<std::size_t>(j)] * c + j] =
          self.grad[static_cast<std::size_t>(j)];
    p.accumulate_grad(g);
  };
  return make_op({c}, std::move(out), {a}, std::move(backward));
}

}  // namespace

Tensor max_axis0(const Tensor& a) { return extreme_axis0(a, true); }
Tensor min_axis0(const Tensor& a) { return extreme_axis0(a, false); }

// ---- shape ops -----------------------------------------------------------------------

Tensor reshape(const Tensor& a, Shape new_shape) {
  check(shape_numel(new_shape) == a.numel(),
        "reshape: element count mismatch " + shape_to_string(a.shape()) +
            " -> " + shape_to_string(new_shape));
  std::vector<float> out(a.data().begin(), a.data().end());
  auto backward = [](Impl& self) {
    Impl& p = *self.parents[0];
    if (!p.requires_grad) return;
    p.accumulate_grad(self.grad);
  };
  return make_op(std::move(new_shape), std::move(out), {a},
                 std::move(backward));
}

Tensor concat(const std::vector<Tensor>& parts, int axis) {
  check(!parts.empty(), "concat of zero tensors");
  check(axis == 0 || axis == 1, "concat: axis must be 0 or 1");
  for (const auto& p : parts)
    check(p.dim() == 2, "concat requires 2-D tensors");

  std::int64_t rows = parts[0].shape()[0], cols = parts[0].shape()[1];
  std::vector<std::int64_t> sizes;
  if (axis == 1) {
    cols = 0;
    for (const auto& p : parts) {
      check(p.shape()[0] == rows, "concat axis=1: row count mismatch");
      sizes.push_back(p.shape()[1]);
      cols += p.shape()[1];
    }
  } else {
    rows = 0;
    for (const auto& p : parts) {
      check(p.shape()[1] == cols, "concat axis=0: column count mismatch");
      sizes.push_back(p.shape()[0]);
      rows += p.shape()[0];
    }
  }

  std::vector<float> out(static_cast<std::size_t>(rows * cols));
  if (axis == 1) {
    std::int64_t col_off = 0;
    for (const auto& p : parts) {
      const auto pd = p.data();
      const std::int64_t pc = p.shape()[1];
      for (std::int64_t i = 0; i < rows; ++i)
        std::copy(pd.begin() + i * pc, pd.begin() + (i + 1) * pc,
                  out.begin() + i * cols + col_off);
      col_off += pc;
    }
  } else {
    std::int64_t row_off = 0;
    for (const auto& p : parts) {
      const auto pd = p.data();
      std::copy(pd.begin(), pd.end(), out.begin() + row_off * cols);
      row_off += p.shape()[0];
    }
  }

  auto backward = [axis, rows, cols, sizes](Impl& self) {
    std::int64_t off = 0;
    for (std::size_t pi = 0; pi < self.parents.size(); ++pi) {
      Impl& p = *self.parents[pi];
      const std::int64_t sz = sizes[pi];
      if (p.requires_grad) {
        if (axis == 1) {
          std::vector<float> g(static_cast<std::size_t>(rows * sz));
          for (std::int64_t i = 0; i < rows; ++i)
            std::copy(self.grad.begin() + i * cols + off,
                      self.grad.begin() + i * cols + off + sz,
                      g.begin() + i * sz);
          p.accumulate_grad(g);
        } else {
          std::vector<float> g(static_cast<std::size_t>(sz * cols));
          std::copy(self.grad.begin() + off * cols,
                    self.grad.begin() + (off + sz) * cols, g.begin());
          p.accumulate_grad(g);
        }
      }
      off += sz;
    }
  };
  return make_op({rows, cols}, std::move(out), parts, std::move(backward));
}

Tensor gather_rows(const Tensor& a, std::span<const std::int64_t> indices) {
  check(a.dim() == 2, "gather_rows requires a 2-D tensor");
  const std::int64_t r = a.shape()[0], c = a.shape()[1];
  const std::int64_t e = static_cast<std::int64_t>(indices.size());
  const auto ad = a.data();
  std::vector<float> out(static_cast<std::size_t>(e * c));
  core::parallel_for(0, e, row_grain(c), [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      const std::int64_t src = indices[static_cast<std::size_t>(i)];
      check(src >= 0 && src < r, "gather_rows: index " + std::to_string(src) +
                                     " out of range [0, " + std::to_string(r) +
                                     ")");
      std::copy(ad.begin() + src * c, ad.begin() + (src + 1) * c,
                out.begin() + i * c);
    }
  });
  std::vector<std::int64_t> idx_copy(indices.begin(), indices.end());
  auto backward = [r, c, e, idx_copy = std::move(idx_copy)](Impl& self) {
    Impl& p = *self.parents[0];
    if (!p.requires_grad) return;
    std::vector<float> g(static_cast<std::size_t>(r * c), 0.f);
    for (std::int64_t i = 0; i < e; ++i) {
      const std::int64_t dst = idx_copy[static_cast<std::size_t>(i)];
      for (std::int64_t j = 0; j < c; ++j)
        g[dst * c + j] += self.grad[static_cast<std::size_t>(i * c + j)];
    }
    p.accumulate_grad(g);
  };
  return make_op({e, c}, std::move(out), {a}, std::move(backward));
}

Tensor slice_rows(const Tensor& a, std::int64_t begin, std::int64_t end) {
  check(a.dim() == 2, "slice_rows requires a 2-D tensor");
  const std::int64_t r = a.shape()[0], c = a.shape()[1];
  check(begin >= 0 && begin <= end && end <= r, "slice_rows: bad range");
  const std::int64_t n = end - begin;
  const auto ad = a.data();
  std::vector<float> out(ad.begin() + begin * c, ad.begin() + end * c);
  auto backward = [r, c, begin, n](Impl& self) {
    Impl& p = *self.parents[0];
    if (!p.requires_grad) return;
    std::vector<float> g(static_cast<std::size_t>(r * c), 0.f);
    std::copy(self.grad.begin(), self.grad.end(), g.begin() + begin * c);
    (void)n;
    p.accumulate_grad(g);
  };
  return make_op({n, c}, std::move(out), {a}, std::move(backward));
}

// ---- scatter ----------------------------------------------------------------------------

namespace detail {

IndexCsr group_by_index(std::span<const std::int64_t> index,
                        std::int64_t num_buckets, const char* what) {
  IndexCsr csr;
  csr.row_ptr.assign(static_cast<std::size_t>(num_buckets) + 1, 0);
  for (const std::int64_t v : index) {
    check(v >= 0 && v < num_buckets,
          std::string(what) + ": index out of range");
    ++csr.row_ptr[static_cast<std::size_t>(v) + 1];
  }
  std::partial_sum(csr.row_ptr.begin(), csr.row_ptr.end(),
                   csr.row_ptr.begin());
  csr.items.resize(index.size());
  std::vector<std::int64_t> cursor(csr.row_ptr.begin(),
                                   csr.row_ptr.end() - 1);
  for (std::size_t i = 0; i < index.size(); ++i)
    csr.items[static_cast<std::size_t>(
        cursor[static_cast<std::size_t>(index[i])]++)] =
        static_cast<std::int64_t>(i);
  return csr;
}

}  // namespace detail

Tensor scatter_reduce(const Tensor& messages,
                      std::span<const std::int64_t> index,
                      std::int64_t num_nodes, Reduce reduce) {
  check(messages.dim() == 2, "scatter_reduce: messages must be 2-D");
  const std::int64_t e = messages.shape()[0], c = messages.shape()[1];
  check(static_cast<std::int64_t>(index.size()) == e,
        "scatter_reduce: index size must equal number of message rows");
  check(num_nodes > 0, "scatter_reduce: num_nodes must be positive");
  const auto md = messages.data();

  // Group edges by destination (stable counting sort), then reduce each
  // node's rows independently. Within a node the rows are visited in
  // ascending edge order — exactly the order the historical serial
  // edge-loop accumulated them — so the result is bit-for-bit identical to
  // that loop for any thread count.
  const detail::IndexCsr by_dst =
      detail::group_by_index(index, num_nodes, "scatter_reduce");
  const std::int64_t node_grain =
      row_grain((e / std::max<std::int64_t>(1, num_nodes) + 1) * c);

  std::vector<float> out(static_cast<std::size_t>(num_nodes * c), 0.f);

  if (reduce == Reduce::Sum || reduce == Reduce::Mean) {
    core::parallel_for(
        0, num_nodes, node_grain, [&](std::int64_t lo, std::int64_t hi) {
          for (std::int64_t v = lo; v < hi; ++v) {
            float* orow = out.data() + v * c;
            const std::int64_t b = by_dst.row_ptr[static_cast<std::size_t>(v)];
            const std::int64_t t =
                by_dst.row_ptr[static_cast<std::size_t>(v) + 1];
            for (std::int64_t s = b; s < t; ++s) {
              const float* mrow =
                  md.data() + by_dst.items[static_cast<std::size_t>(s)] * c;
              for (std::int64_t j = 0; j < c; ++j) orow[j] += mrow[j];
            }
            if (reduce == Reduce::Mean && t > b) {
              const float d = static_cast<float>(t - b);
              for (std::int64_t j = 0; j < c; ++j) orow[j] /= d;
            }
          }
        });
    std::vector<std::int64_t> idx_copy(index.begin(), index.end());
    std::vector<std::int64_t> degree(by_dst.row_ptr.size() - 1);
    for (std::size_t v = 0; v + 1 < by_dst.row_ptr.size(); ++v)
      degree[v] = by_dst.row_ptr[v + 1] - by_dst.row_ptr[v];
    auto backward = [e, c, reduce, degree = std::move(degree),
                     idx_copy = std::move(idx_copy)](Impl& self) {
      Impl& p = *self.parents[0];
      if (!p.requires_grad) return;
      std::vector<float> g(static_cast<std::size_t>(e * c));
      core::parallel_for(
          0, e, row_grain(c), [&](std::int64_t lo, std::int64_t hi) {
            for (std::int64_t i = lo; i < hi; ++i) {
              const std::int64_t dst = idx_copy[static_cast<std::size_t>(i)];
              const float scale =
                  reduce == Reduce::Mean
                      ? 1.f / static_cast<float>(
                                  degree[static_cast<std::size_t>(dst)])
                      : 1.f;
              for (std::int64_t j = 0; j < c; ++j)
                g[i * c + j] =
                    self.grad[static_cast<std::size_t>(dst * c + j)] * scale;
            }
          });
      p.accumulate_grad(g);
    };
    return make_op({num_nodes, c}, std::move(out), {messages},
                   std::move(backward));
  }

  // Max / Min: track winning edge per (node, channel); untouched rows are 0.
  const bool is_max = reduce == Reduce::Max;
  std::vector<std::int64_t> arg(static_cast<std::size_t>(num_nodes * c), -1);
  core::parallel_for(
      0, num_nodes, node_grain, [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t v = lo; v < hi; ++v) {
          const std::int64_t b = by_dst.row_ptr[static_cast<std::size_t>(v)];
          const std::int64_t t =
              by_dst.row_ptr[static_cast<std::size_t>(v) + 1];
          for (std::int64_t s = b; s < t; ++s) {
            const std::int64_t i = by_dst.items[static_cast<std::size_t>(s)];
            for (std::int64_t j = 0; j < c; ++j) {
              const float mv = md[i * c + j];
              auto& a = arg[static_cast<std::size_t>(v * c + j)];
              float& o = out[static_cast<std::size_t>(v * c + j)];
              if (a < 0 || (is_max ? (mv > o) : (mv < o))) {
                o = mv;
                a = i;
              }
            }
          }
        }
      });

  auto backward = [e, c, num_nodes, arg = std::move(arg)](Impl& self) {
    Impl& p = *self.parents[0];
    if (!p.requires_grad) return;
    std::vector<float> g(static_cast<std::size_t>(e * c), 0.f);
    // arg[v * c + j] names an edge whose destination is v, so two distinct
    // nodes can never route into the same (edge, channel) slot: the writes
    // below are disjoint across v.
    core::parallel_for(
        0, num_nodes, row_grain(c), [&](std::int64_t lo, std::int64_t hi) {
          for (std::int64_t v = lo; v < hi; ++v)
            for (std::int64_t j = 0; j < c; ++j) {
              const std::int64_t src = arg[static_cast<std::size_t>(v * c + j)];
              if (src >= 0)
                g[src * c + j] += self.grad[static_cast<std::size_t>(v * c + j)];
            }
        });
    p.accumulate_grad(g);
  };
  return make_op({num_nodes, c}, std::move(out), {messages},
                 std::move(backward));
}

// ---- softmax & losses ----------------------------------------------------------------------

Tensor softmax(const Tensor& a) {
  check(a.dim() == 2, "softmax requires a 2-D tensor");
  const std::int64_t r = a.shape()[0], c = a.shape()[1];
  const auto ad = a.data();
  std::vector<float> out(static_cast<std::size_t>(r * c));
  for (std::int64_t i = 0; i < r; ++i) {
    float mx = -std::numeric_limits<float>::infinity();
    for (std::int64_t j = 0; j < c; ++j) mx = std::max(mx, ad[i * c + j]);
    float denom = 0.f;
    for (std::int64_t j = 0; j < c; ++j) {
      const float ev = std::exp(ad[i * c + j] - mx);
      out[i * c + j] = ev;
      denom += ev;
    }
    for (std::int64_t j = 0; j < c; ++j) out[i * c + j] /= denom;
  }
  std::vector<float> y_copy = out;
  auto backward = [r, c, y_copy = std::move(y_copy)](Impl& self) {
    Impl& p = *self.parents[0];
    if (!p.requires_grad) return;
    std::vector<float> g(static_cast<std::size_t>(r * c));
    for (std::int64_t i = 0; i < r; ++i) {
      float dot = 0.f;
      for (std::int64_t j = 0; j < c; ++j)
        dot += self.grad[static_cast<std::size_t>(i * c + j)] *
               y_copy[static_cast<std::size_t>(i * c + j)];
      for (std::int64_t j = 0; j < c; ++j)
        g[i * c + j] = y_copy[static_cast<std::size_t>(i * c + j)] *
                       (self.grad[static_cast<std::size_t>(i * c + j)] - dot);
    }
    p.accumulate_grad(g);
  };
  return make_op({r, c}, std::move(out), {a}, std::move(backward));
}

Tensor log_softmax(const Tensor& a) {
  check(a.dim() == 2, "log_softmax requires a 2-D tensor");
  const std::int64_t r = a.shape()[0], c = a.shape()[1];
  const auto ad = a.data();
  std::vector<float> out(static_cast<std::size_t>(r * c));
  std::vector<float> soft(static_cast<std::size_t>(r * c));
  for (std::int64_t i = 0; i < r; ++i) {
    float mx = -std::numeric_limits<float>::infinity();
    for (std::int64_t j = 0; j < c; ++j) mx = std::max(mx, ad[i * c + j]);
    float denom = 0.f;
    for (std::int64_t j = 0; j < c; ++j) denom += std::exp(ad[i * c + j] - mx);
    const float log_denom = std::log(denom);
    for (std::int64_t j = 0; j < c; ++j) {
      out[i * c + j] = ad[i * c + j] - mx - log_denom;
      soft[i * c + j] = std::exp(out[i * c + j]);
    }
  }
  auto backward = [r, c, soft = std::move(soft)](Impl& self) {
    Impl& p = *self.parents[0];
    if (!p.requires_grad) return;
    std::vector<float> g(static_cast<std::size_t>(r * c));
    for (std::int64_t i = 0; i < r; ++i) {
      float row_sum = 0.f;
      for (std::int64_t j = 0; j < c; ++j)
        row_sum += self.grad[static_cast<std::size_t>(i * c + j)];
      for (std::int64_t j = 0; j < c; ++j)
        g[i * c + j] = self.grad[static_cast<std::size_t>(i * c + j)] -
                       soft[static_cast<std::size_t>(i * c + j)] * row_sum;
    }
    p.accumulate_grad(g);
  };
  return make_op({r, c}, std::move(out), {a}, std::move(backward));
}

Tensor cross_entropy(const Tensor& logits,
                     std::span<const std::int64_t> labels) {
  check(logits.dim() == 2, "cross_entropy: logits must be 2-D");
  const std::int64_t r = logits.shape()[0], c = logits.shape()[1];
  check(static_cast<std::int64_t>(labels.size()) == r,
        "cross_entropy: label count mismatch");
  for (auto l : labels)
    check(l >= 0 && l < c, "cross_entropy: label out of range");

  const auto ad = logits.data();
  std::vector<float> soft(static_cast<std::size_t>(r * c));
  float loss = 0.f;
  for (std::int64_t i = 0; i < r; ++i) {
    float mx = -std::numeric_limits<float>::infinity();
    for (std::int64_t j = 0; j < c; ++j) mx = std::max(mx, ad[i * c + j]);
    float denom = 0.f;
    for (std::int64_t j = 0; j < c; ++j) denom += std::exp(ad[i * c + j] - mx);
    const float log_denom = std::log(denom);
    for (std::int64_t j = 0; j < c; ++j)
      soft[i * c + j] = std::exp(ad[i * c + j] - mx - log_denom);
    const std::int64_t y = labels[static_cast<std::size_t>(i)];
    loss -= ad[i * c + y] - mx - log_denom;
  }
  loss /= static_cast<float>(r);

  std::vector<std::int64_t> lbl(labels.begin(), labels.end());
  auto backward = [r, c, soft = std::move(soft), lbl = std::move(lbl)](Impl& self) {
    Impl& p = *self.parents[0];
    if (!p.requires_grad) return;
    const float seed = self.grad[0] / static_cast<float>(r);
    std::vector<float> g(static_cast<std::size_t>(r * c));
    for (std::int64_t i = 0; i < r; ++i) {
      const std::int64_t y = lbl[static_cast<std::size_t>(i)];
      for (std::int64_t j = 0; j < c; ++j) {
        float v = soft[static_cast<std::size_t>(i * c + j)];
        if (j == y) v -= 1.f;
        g[i * c + j] = v * seed;
      }
    }
    p.accumulate_grad(g);
  };
  return make_op({}, {loss}, {logits}, std::move(backward));
}

// ---- dropout -------------------------------------------------------------------------------

Tensor dropout(const Tensor& a, float p, bool training, Rng& rng) {
  check(p >= 0.f && p < 1.f, "dropout: p must be in [0, 1)");
  if (!training || p == 0.f) return a;
  const std::int64_t n = a.numel();
  const float scale = 1.f / (1.f - p);
  std::vector<float> mask(static_cast<std::size_t>(n));
  for (auto& m : mask) m = rng.bernoulli(p) ? 0.f : scale;
  const auto ad = a.data();
  std::vector<float> out(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) out[i] = ad[i] * mask[i];
  auto backward = [mask = std::move(mask)](Impl& self) {
    Impl& par = *self.parents[0];
    if (!par.requires_grad) return;
    std::vector<float> g(mask.size());
    for (std::size_t i = 0; i < mask.size(); ++i)
      g[i] = self.grad[i] * mask[i];
    par.accumulate_grad(g);
  };
  return make_op(a.shape(), std::move(out), {a}, std::move(backward));
}

// ---- helpers ---------------------------------------------------------------------------------

std::vector<std::int64_t> argmax_rows(const Tensor& a) {
  check(a.dim() == 2, "argmax_rows requires a 2-D tensor");
  const std::int64_t r = a.shape()[0], c = a.shape()[1];
  check(c > 0, "argmax_rows: empty rows");
  const auto ad = a.data();
  std::vector<std::int64_t> out(static_cast<std::size_t>(r));
  for (std::int64_t i = 0; i < r; ++i) {
    std::int64_t best = 0;
    for (std::int64_t j = 1; j < c; ++j)
      if (ad[i * c + j] > ad[i * c + best]) best = j;
    out[static_cast<std::size_t>(i)] = best;
  }
  return out;
}

}  // namespace hg
