// optim.hpp — gradient-descent optimisers over parameter lists.
//
// Parameters are plain Tensors with requires_grad set; Modules expose
// `parameters()` as std::vector<Tensor> and optimisers mutate the data
// in place. Duplicate handles to the same storage are deduped so shared
// supernet weights are stepped exactly once.
#pragma once

#include <unordered_map>
#include <vector>

#include "tensor/tensor.hpp"

namespace hg {

/// Common interface: step() applies one update from accumulated grads,
/// zero_grad() clears them for the next iteration.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Tensor> params);
  virtual ~Optimizer() = default;

  virtual void step() = 0;
  void zero_grad();

  std::size_t num_params() const { return params_.size(); }

 protected:
  std::vector<Tensor> params_;
};

/// SGD with optional momentum and decoupled L2 weight decay.
class Sgd final : public Optimizer {
 public:
  Sgd(std::vector<Tensor> params, float lr, float momentum = 0.f,
      float weight_decay = 0.f);

  void step() override;
  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 private:
  float lr_;
  float momentum_;
  float weight_decay_;
  std::vector<std::vector<float>> velocity_;
};

/// Adam (Kingma & Ba, 2015) with bias correction.
class Adam final : public Optimizer {
 public:
  Adam(std::vector<Tensor> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.f);

  void step() override;
  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 private:
  float lr_, beta1_, beta2_, eps_, weight_decay_;
  std::int64_t t_ = 0;
  std::vector<std::vector<float>> m_, v_;
};

/// Cosine learning-rate schedule: lr(t) = lr_min + 0.5(lr0-lr_min)(1+cos(pi t/T)).
float cosine_lr(float lr0, float lr_min, std::int64_t step, std::int64_t total);

}  // namespace hg
