// tensor.hpp — dense float32 tensor with reverse-mode automatic
// differentiation.
//
// This is the numerical substrate for the whole HGNAS reproduction: the
// DGCNN baselines, the weight-sharing supernet and the GCN-based latency
// predictor are all trained through this engine.
//
// Design notes
//  * `Tensor` is a cheap value-semantic handle onto a shared
//    `TensorImpl` (data + grad + autograd edges), mirroring the
//    define-by-run tape style of PyTorch.
//  * Only float32 is supported; shapes are arbitrary-rank but the operator
//    set is optimised for the 1-D / 2-D tensors used by GNNs
//    ([num_nodes, channels], [num_edges, channels]).
//  * Broadcasting is intentionally restricted to the patterns required by
//    neural-network layers: exact shape, right-hand scalar, row vector
//    ([N,M] op [M]) and column vector ([N,M] op [N,1]). Anything else
//    throws — silent misbroadcasts are a classic source of wrong results.
//  * Gradients are accumulated (+=), so a tensor used twice receives the
//    sum of both contributions, and `zero_grad` must be called between
//    optimisation steps.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace hg {

using Shape = std::vector<std::int64_t>;

/// Number of elements described by a shape. Empty shape = scalar = 1.
std::int64_t shape_numel(const Shape& shape);

/// Human-readable "[2, 3]" form, used in error messages.
std::string shape_to_string(const Shape& shape);

class Tensor;

namespace detail {

/// Shared state behind a Tensor handle. Users never touch this directly.
struct TensorImpl {
  Shape shape;
  std::vector<float> data;
  bool requires_grad = false;
  std::vector<float> grad;  // lazily sized to data.size() on first accumulate

  // Autograd tape: the tensors this one was computed from, plus a closure
  // that scatters `grad` back into the parents' grads.
  std::vector<std::shared_ptr<TensorImpl>> parents;
  std::function<void(TensorImpl&)> backward_fn;

  void accumulate_grad(std::span<const float> g);
  void ensure_grad();
};

/// Stable grouping of positions by index value (counting sort): bucket v
/// owns items[row_ptr[v] .. row_ptr[v+1]), in ascending position order.
/// Shared by scatter_reduce and the fused GNN aggregation kernels; the
/// ascending order inside each bucket is what keeps their parallel
/// reductions bit-for-bit identical to the serial edge loop.
struct IndexCsr {
  std::vector<std::int64_t> row_ptr;  // size num_buckets + 1
  std::vector<std::int64_t> items;    // size index.size()
};

/// Group positions 0..index.size() by index[i]. Throws on out-of-range
/// values, prefixing the message with `what`.
IndexCsr group_by_index(std::span<const std::int64_t> index,
                        std::int64_t num_buckets, const char* what);

/// Build a custom autograd op outside tensor.cpp (fused kernels). Decides
/// requires_grad from `parents` and records the tape edge exactly like the
/// built-in ops; `backward_fn` must scatter self.grad into the parents via
/// accumulate_grad.
Tensor make_custom_op(Shape shape, std::vector<float> data,
                      std::vector<Tensor> parents,
                      std::function<void(TensorImpl&)> backward_fn);

/// RAII guard disabling autograd tape recording (inference / measurement).
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool prev_;
};

bool grad_enabled();

}  // namespace detail

using detail::NoGradGuard;

class Rng;

/// Dense float tensor with optional autograd.
class Tensor {
 public:
  /// Default: empty scalar-shaped tensor holding {0}.
  Tensor();

  // ---- factories ---------------------------------------------------------
  static Tensor zeros(Shape shape, bool requires_grad = false);
  static Tensor ones(Shape shape, bool requires_grad = false);
  static Tensor full(Shape shape, float value, bool requires_grad = false);
  static Tensor scalar(float value, bool requires_grad = false);
  /// Takes ownership of `values`; size must equal shape_numel(shape).
  static Tensor from_vector(Shape shape, std::vector<float> values,
                            bool requires_grad = false);
  static Tensor randn(Shape shape, Rng& rng, float mean = 0.f,
                      float stddev = 1.f, bool requires_grad = false);
  static Tensor rand_uniform(Shape shape, Rng& rng, float lo, float hi,
                             bool requires_grad = false);

  // ---- shape & data access ------------------------------------------------
  const Shape& shape() const { return impl_->shape; }
  std::int64_t dim() const { return static_cast<std::int64_t>(impl_->shape.size()); }
  std::int64_t size(std::int64_t axis) const;
  std::int64_t numel() const { return static_cast<std::int64_t>(impl_->data.size()); }

  std::span<float> data() { return impl_->data; }
  std::span<const float> data() const { return impl_->data; }
  std::span<const float> grad() const { return impl_->grad; }
  bool has_grad() const { return !impl_->grad.empty(); }

  /// Element access for scalars and small tensors (tests, losses).
  float item() const;
  float at(std::initializer_list<std::int64_t> idx) const;

  bool requires_grad() const { return impl_->requires_grad; }
  /// Mark as a leaf that should receive gradients (parameters, probes).
  Tensor& set_requires_grad(bool v);

  void zero_grad();

  /// Run reverse-mode autodiff from this tensor. Precondition: scalar
  /// (numel == 1) unless an explicit seed gradient is supplied.
  void backward();
  void backward(std::span<const float> seed);

  /// Deep copy of data (drops the autograd history).
  Tensor detach() const;
  Tensor clone() const;  // like detach but keeps requires_grad flag

  // Identity of the underlying storage — used by optimisers to dedupe.
  const void* id() const { return impl_.get(); }

  // Internal handle access for op implementations.
  const std::shared_ptr<detail::TensorImpl>& impl() const { return impl_; }
  explicit Tensor(std::shared_ptr<detail::TensorImpl> impl)
      : impl_(std::move(impl)) {}

 private:
  std::shared_ptr<detail::TensorImpl> impl_;
};

// ---- binary elementwise (broadcast: exact | scalar | [M] row | [N,1] col) --
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor div(const Tensor& a, const Tensor& b);

Tensor add(const Tensor& a, float s);
Tensor sub(const Tensor& a, float s);
Tensor mul(const Tensor& a, float s);
Tensor div(const Tensor& a, float s);

inline Tensor operator+(const Tensor& a, const Tensor& b) { return add(a, b); }
inline Tensor operator-(const Tensor& a, const Tensor& b) { return sub(a, b); }
inline Tensor operator*(const Tensor& a, const Tensor& b) { return mul(a, b); }
inline Tensor operator/(const Tensor& a, const Tensor& b) { return div(a, b); }
inline Tensor operator+(const Tensor& a, float s) { return add(a, s); }
inline Tensor operator-(const Tensor& a, float s) { return sub(a, s); }
inline Tensor operator*(const Tensor& a, float s) { return mul(a, s); }
inline Tensor operator/(const Tensor& a, float s) { return div(a, s); }

Tensor neg(const Tensor& a);

// ---- unary elementwise ------------------------------------------------------
Tensor relu(const Tensor& a);
Tensor leaky_relu(const Tensor& a, float negative_slope = 0.01f);
Tensor sigmoid(const Tensor& a);
Tensor tanh_op(const Tensor& a);
Tensor exp_op(const Tensor& a);
Tensor log_op(const Tensor& a);      // natural log; inputs must be > 0
Tensor sqrt_op(const Tensor& a);
Tensor square(const Tensor& a);
Tensor abs_op(const Tensor& a);

// ---- linear algebra ---------------------------------------------------------
/// [N,K] x [K,M] -> [N,M].
Tensor matmul(const Tensor& a, const Tensor& b);
/// 2-D transpose (copies).
Tensor transpose(const Tensor& a);

// ---- reductions -------------------------------------------------------------
Tensor sum_all(const Tensor& a);                   // -> scalar
Tensor mean_all(const Tensor& a);                  // -> scalar
/// 2-D reduction along `axis` (0: over rows -> [M]; 1: over cols -> [N]).
Tensor sum_axis(const Tensor& a, int axis);
Tensor mean_axis(const Tensor& a, int axis);
/// Max over axis 0 of a 2-D tensor -> [M]; gradient routed to the argmax row.
Tensor max_axis0(const Tensor& a);
Tensor min_axis0(const Tensor& a);

// ---- shape ops ---------------------------------------------------------------
Tensor reshape(const Tensor& a, Shape new_shape);
/// Concatenate 2-D tensors along `axis` (0 or 1).
Tensor concat(const std::vector<Tensor>& parts, int axis);
/// Select rows of a 2-D tensor: result[i] = a[indices[i]]. Grad scatters back.
Tensor gather_rows(const Tensor& a, std::span<const std::int64_t> indices);
/// Rows [begin, end) of a 2-D tensor.
Tensor slice_rows(const Tensor& a, std::int64_t begin, std::int64_t end);

// ---- GNN scatter primitives ---------------------------------------------------
enum class Reduce { Sum, Mean, Max, Min };

/// Scatter-reduce edge messages to nodes: out[index[e]] ⊕= messages[e].
/// messages: [E, M]; index: size E with values in [0, num_nodes).
/// Mean divides by in-degree (degree-0 rows are zero). Max/Min route the
/// gradient to the winning edge; empty rows get 0.
Tensor scatter_reduce(const Tensor& messages,
                      std::span<const std::int64_t> index,
                      std::int64_t num_nodes, Reduce reduce);

// ---- softmax & losses -----------------------------------------------------------
/// Numerically-stable softmax over the last dimension of a 2-D tensor.
Tensor softmax(const Tensor& a);
Tensor log_softmax(const Tensor& a);
/// Mean cross-entropy of logits [N,C] against integer labels (size N).
Tensor cross_entropy(const Tensor& logits, std::span<const std::int64_t> labels);

// ---- regularisation ----------------------------------------------------------
/// Inverted dropout. Identity when !training or p == 0.
Tensor dropout(const Tensor& a, float p, bool training, Rng& rng);

// ---- non-differentiable helpers -------------------------------------------------
/// Row-wise argmax of a 2-D tensor (predictions from logits).
std::vector<std::int64_t> argmax_rows(const Tensor& a);

}  // namespace hg
