// rng.hpp — deterministic pseudo-random number generation for the whole
// project. Every stochastic component (dataset synthesis, weight init,
// supernet sampling, evolutionary search, measurement noise) takes an
// explicit seed so that runs are reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <cmath>
#include <limits>
#include <vector>

namespace hg {

/// SplitMix64 — used to expand a single user seed into a full xoshiro state.
/// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
/// generators" (OOPSLA 2014).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** — fast, high-quality 64-bit PRNG (Blackman & Vigna).
/// Satisfies UniformRandomBitGenerator so it can feed <random> if needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Uniform float in [lo, hi).
  float uniform(float lo, float hi) {
    return lo + static_cast<float>(uniform()) * (hi - lo);
  }

  /// Uniform integer in [0, n). Precondition: n > 0.
  std::uint64_t uniform_int(std::uint64_t n) {
    // Lemire's nearly-divisionless bounded generation.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    std::uint64_t l = static_cast<std::uint64_t>(m);
    if (l < n) {
      std::uint64_t t = (0 - n) % n;
      while (l < t) {
        x = next();
        m = static_cast<__uint128_t>(x) * n;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    uniform_int(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Standard normal via Box–Muller (cached second value).
  float normal() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    float u1 = 0.f;
    do {
      u1 = static_cast<float>(uniform());
    } while (u1 <= 1e-12f);
    const float u2 = static_cast<float>(uniform());
    const float r = std::sqrt(-2.0f * std::log(u1));
    const float theta = 6.28318530717958647692f * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

  float normal(float mean, float stddev) { return mean + stddev * normal(); }

  /// True with probability p.
  bool bernoulli(double p) { return uniform() < p; }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_int(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child stream (for parallel-safe sub-seeding).
  Rng split() { return Rng(next() ^ 0xA5A5A5A5DEADBEEFULL); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
  float cached_ = 0.f;
  bool has_cached_ = false;
};

}  // namespace hg
