#include "tensor/serialize.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace hg {

namespace {
constexpr char kMagic[4] = {'H', 'G', 'T', '1'};
}

void save_tensors(const std::string& path,
                  const std::vector<Tensor>& tensors) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_tensors: cannot open " + path);
  out.write(kMagic, 4);
  const std::uint64_t count = tensors.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto& t : tensors) {
    const std::uint64_t rank = t.shape().size();
    out.write(reinterpret_cast<const char*>(&rank), sizeof(rank));
    for (auto d : t.shape())
      out.write(reinterpret_cast<const char*>(&d), sizeof(d));
    const auto data = t.data();
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size() * sizeof(float)));
  }
  if (!out) throw std::runtime_error("save_tensors: write failed for " + path);
}

void load_tensors(const std::string& path, std::vector<Tensor>& tensors) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_tensors: cannot open " + path);
  char magic[4];
  in.read(magic, 4);
  if (!in || std::memcmp(magic, kMagic, 4) != 0)
    throw std::runtime_error("load_tensors: bad magic in " + path);
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (count != tensors.size())
    throw std::runtime_error("load_tensors: checkpoint has " +
                             std::to_string(count) + " tensors, expected " +
                             std::to_string(tensors.size()));
  for (auto& t : tensors) {
    std::uint64_t rank = 0;
    in.read(reinterpret_cast<char*>(&rank), sizeof(rank));
    Shape shape(rank);
    for (auto& d : shape) in.read(reinterpret_cast<char*>(&d), sizeof(d));
    if (shape != t.shape())
      throw std::runtime_error("load_tensors: shape mismatch, file has " +
                               shape_to_string(shape) + " expected " +
                               shape_to_string(t.shape()));
    auto data = t.data();
    in.read(reinterpret_cast<char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(float)));
    if (!in) throw std::runtime_error("load_tensors: truncated file " + path);
  }
}

}  // namespace hg
