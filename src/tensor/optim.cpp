#include "tensor/optim.hpp"

#include <cmath>
#include <stdexcept>
#include <unordered_set>

namespace hg {

Optimizer::Optimizer(std::vector<Tensor> params) {
  std::unordered_set<const void*> seen;
  for (auto& p : params) {
    if (!p.requires_grad())
      throw std::invalid_argument(
          "optimizer: parameter without requires_grad");
    if (seen.insert(p.id()).second) params_.push_back(p);
  }
}

void Optimizer::zero_grad() {
  for (auto& p : params_) p.zero_grad();
}

Sgd::Sgd(std::vector<Tensor> params, float lr, float momentum,
         float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  velocity_.resize(params_.size());
}

void Sgd::step() {
  for (std::size_t pi = 0; pi < params_.size(); ++pi) {
    auto& p = params_[pi];
    if (!p.has_grad()) continue;  // unused this iteration (supernet paths)
    auto data = p.data();
    const auto grad = p.grad();
    auto& vel = velocity_[pi];
    if (momentum_ != 0.f && vel.size() != data.size())
      vel.assign(data.size(), 0.f);
    for (std::size_t i = 0; i < data.size(); ++i) {
      float g = grad[i] + weight_decay_ * data[i];
      if (momentum_ != 0.f) {
        vel[i] = momentum_ * vel[i] + g;
        g = vel[i];
      }
      data[i] -= lr_ * g;
    }
  }
}

Adam::Adam(std::vector<Tensor> params, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.resize(params_.size());
  v_.resize(params_.size());
}

void Adam::step() {
  ++t_;
  const float bc1 = 1.f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.f - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t pi = 0; pi < params_.size(); ++pi) {
    auto& p = params_[pi];
    if (!p.has_grad()) continue;
    auto data = p.data();
    const auto grad = p.grad();
    auto& m = m_[pi];
    auto& v = v_[pi];
    if (m.size() != data.size()) {
      m.assign(data.size(), 0.f);
      v.assign(data.size(), 0.f);
    }
    for (std::size_t i = 0; i < data.size(); ++i) {
      const float g = grad[i] + weight_decay_ * data[i];
      m[i] = beta1_ * m[i] + (1.f - beta1_) * g;
      v[i] = beta2_ * v[i] + (1.f - beta2_) * g * g;
      const float mhat = m[i] / bc1;
      const float vhat = v[i] / bc2;
      data[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

float cosine_lr(float lr0, float lr_min, std::int64_t step,
                std::int64_t total) {
  if (total <= 0 || step >= total) return lr_min;
  const float t = static_cast<float>(step) / static_cast<float>(total);
  return lr_min + 0.5f * (lr0 - lr_min) *
                      (1.f + std::cos(3.14159265358979323846f * t));
}

}  // namespace hg
