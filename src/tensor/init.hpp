// init.hpp — weight-initialisation schemes.
#pragma once

#include <cmath>

#include "tensor/rng.hpp"
#include "tensor/tensor.hpp"

namespace hg {

/// Xavier/Glorot uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out)).
/// Standard for the linear layers feeding tanh/softmax heads.
inline Tensor xavier_uniform(std::int64_t fan_in, std::int64_t fan_out,
                             Rng& rng) {
  const float a =
      std::sqrt(6.f / static_cast<float>(fan_in + fan_out));
  return Tensor::rand_uniform({fan_in, fan_out}, rng, -a, a,
                              /*requires_grad=*/true);
}

/// Kaiming/He normal: N(0, sqrt(2 / fan_in)), matched to ReLU-family
/// activations (used throughout the GNN combine layers).
inline Tensor kaiming_normal(std::int64_t fan_in, std::int64_t fan_out,
                             Rng& rng) {
  const float stddev = std::sqrt(2.f / static_cast<float>(fan_in));
  return Tensor::randn({fan_in, fan_out}, rng, 0.f, stddev,
                       /*requires_grad=*/true);
}

/// Bias vector initialised to zero.
inline Tensor zeros_bias(std::int64_t n) {
  return Tensor::zeros({n}, /*requires_grad=*/true);
}

}  // namespace hg
