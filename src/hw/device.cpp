#include "hw/device.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hg::hw {

namespace {

void check(bool cond, const std::string& msg) {
  if (!cond) throw std::invalid_argument("hw: " + msg);
}

/// Calibration targets taken from the paper: Table II DGCNN row (total
/// latency at 1024 points) and the Fig. 3 execution-time breakdown, in
/// category order {Sample, Aggregate, Combine, Others}.
struct CalibTarget {
  double total_ms;
  std::array<double, kNumCategories> pct;
};

CalibTarget calibration_target(DeviceKind kind) {
  switch (kind) {
    case DeviceKind::Rtx3080:
      // GPU: sample (KNN top-k) dominates; dense combine is nearly free.
      return {51.8, {0.5326, 0.3313, 0.0542, 0.0819}};
    case DeviceKind::IntelI7_8700K:
      // CPU: irregular gather/scatter aggregation dominates.
      return {234.2, {0.0176, 0.8744, 0.0085, 0.0995}};
    case DeviceKind::JetsonTx2:
      // Embedded GPU: sample-bound like the RTX but with fat overheads.
      return {270.4, {0.5088, 0.1170, 0.0817, 0.2925}};
    case DeviceKind::RaspberryPi3B:
      // Compute-bound on everything: all categories carry real weight.
      return {4139.1, {0.2246, 0.3355, 0.2732, 0.1666}};
  }
  throw std::invalid_argument("hw: unknown device kind");
}

struct MemoryProfile {
  double capacity_mb;
  double base_mb;
  double workspace_factor;
};

/// Solved against Table II DGCNN peak-memory column at 1024 points.
/// The reference DGCNN's peak transient buffer is the layer-4 edge MLP
/// (messages + linear/BN/act temporaries ~= 84 MB); GPU-class runtimes get
/// a small resident base so that the searched models' low footprints
/// (Table II: 17-19 MB on RTX/TX2) are reachable, while the CPU-class
/// entries carry the large framework base their Table II rows imply.
MemoryProfile memory_profile(DeviceKind kind) {
  switch (kind) {
    case DeviceKind::Rtx3080: return {10240.0, 8.0, 1.559};
    case DeviceKind::IntelI7_8700K: return {16384.0, 200.0, 5.217};
    case DeviceKind::JetsonTx2: return {8192.0, 8.0, 1.571};
    // 1 GB module minus OS/runtime ~= 700 MB usable: DGCNN OOMs above
    // ~1536 points, matching Fig. 1.
    case DeviceKind::RaspberryPi3B: return {700.0, 150.0, 3.606};
  }
  throw std::invalid_argument("hw: unknown device kind");
}

}  // namespace

std::string category_name(OpCategory c) {
  switch (c) {
    case OpCategory::Sample: return "Sample";
    case OpCategory::Aggregate: return "Aggregate";
    case OpCategory::Combine: return "Combine";
    case OpCategory::Others: return "Others";
  }
  return "?";
}

double Trace::total_work(OpCategory c) const {
  double w = 0.0;
  for (const auto& op : ops)
    if (op.category == c) w += op.work;
  return w;
}

double Trace::max_workspace_mb() const {
  double w = 0.0;
  for (const auto& op : ops) w = std::max(w, op.workspace_mb);
  return w;
}

TraceBuilder& TraceBuilder::knn(std::int64_t n, std::int64_t dim,
                                std::int64_t k) {
  check(n > 0 && dim > 0 && k > 0, "knn: all arguments must be positive");
  const double nn = static_cast<double>(n) * static_cast<double>(n);
  const double work =
      nn * (static_cast<double>(dim) + std::log2(static_cast<double>(k) + 1));
  // The pairwise-distance matrix is the transient buffer.
  trace_.ops.push_back({OpCategory::Sample,
                        "knn(n=" + std::to_string(n) +
                            ",d=" + std::to_string(dim) +
                            ",k=" + std::to_string(k) + ")",
                        work, nn * 4.0 / 1e6});
  return *this;
}

TraceBuilder& TraceBuilder::random_sample(std::int64_t n, std::int64_t k) {
  check(n > 0 && k > 0, "random_sample: arguments must be positive");
  const double work = static_cast<double>(n) * static_cast<double>(k);
  trace_.ops.push_back({OpCategory::Sample,
                        "random(n=" + std::to_string(n) +
                            ",k=" + std::to_string(k) + ")",
                        work,
                        static_cast<double>(n) * static_cast<double>(k) *
                            8.0 / 1e6});
  return *this;
}

// Plain gather/scatter aggregation is memory-bound: one element of
// irregular traffic costs about this many MAC-equivalents of the fused
// edge-MLP path that shares the Aggregate coefficient.
constexpr double kIrregularTrafficCostInMacs = 32.0;

TraceBuilder& TraceBuilder::aggregate(std::int64_t edges,
                                      std::int64_t msg_dim) {
  check(edges >= 0 && msg_dim > 0, "aggregate: bad arguments");
  const double elems =
      static_cast<double>(edges) * static_cast<double>(msg_dim);
  trace_.ops.push_back({OpCategory::Aggregate,
                        "aggregate(e=" + std::to_string(edges) +
                            ",m=" + std::to_string(msg_dim) + ")",
                        elems * kIrregularTrafficCostInMacs,
                        elems * 4.0 / 1e6});
  return *this;
}

TraceBuilder& TraceBuilder::edge_mlp_aggregate(std::int64_t edges,
                                               std::int64_t in_dim,
                                               std::int64_t out_dim) {
  check(edges >= 0 && in_dim > 0 && out_dim > 0,
        "edge_mlp_aggregate: bad arguments");
  const double e = static_cast<double>(edges);
  const double work = e * 2.0 * static_cast<double>(in_dim) *
                      static_cast<double>(out_dim);
  // Message buffer [E, 2*in] plus MLP/reduce temporaries on [E, out].
  const double ws = e *
                    (2.0 * static_cast<double>(in_dim) +
                     3.0 * static_cast<double>(out_dim)) *
                    4.0 / 1e6;
  trace_.ops.push_back({OpCategory::Aggregate,
                        "edge_mlp_aggr(e=" + std::to_string(edges) + ",2x" +
                            std::to_string(in_dim) + "->" +
                            std::to_string(out_dim) + ")",
                        work, ws});
  return *this;
}

TraceBuilder& TraceBuilder::combine(std::int64_t n, std::int64_t in_dim,
                                    std::int64_t out_dim) {
  check(n >= 0 && in_dim > 0 && out_dim > 0, "combine: bad arguments");
  const double work = static_cast<double>(n) * static_cast<double>(in_dim) *
                      static_cast<double>(out_dim);
  // Workspace: input rows stay live plus linear / norm / activation
  // temporaries on the output (~3 buffers) — this is what makes DGCNN's
  // per-edge MLPs the memory hot spot the paper reports.
  const double ws = static_cast<double>(n) *
                    (static_cast<double>(in_dim) +
                     3.0 * static_cast<double>(out_dim)) *
                    4.0 / 1e6;
  trace_.ops.push_back({OpCategory::Combine,
                        "combine(n=" + std::to_string(n) +
                            "," + std::to_string(in_dim) + "->" +
                            std::to_string(out_dim) + ")",
                        work, ws});
  return *this;
}

TraceBuilder& TraceBuilder::other(std::int64_t n, std::int64_t dim,
                                  const std::string& name) {
  check(n >= 0 && dim > 0, "other: bad arguments");
  const double work = static_cast<double>(n) * static_cast<double>(dim);
  trace_.ops.push_back({OpCategory::Others, name, work, work * 4.0 / 1e6});
  return *this;
}

TraceBuilder& TraceBuilder::set_param_mb(double mb) {
  check(mb >= 0.0, "set_param_mb: negative");
  trace_.param_mb = mb;
  return *this;
}

Device::Device(DeviceSpec spec) : spec_(std::move(spec)) {
  for (double c : spec_.coef)
    check(c >= 0.0, "device coefficient must be non-negative");
}

double Device::latency_ms(const Trace& t) const {
  double ms = 0.0;
  for (const auto& op : t.ops)
    ms += spec_.op_overhead_ms +
          op.work * spec_.coef[static_cast<int>(op.category)] * 1e3;
  return ms;
}

double Device::peak_memory_mb(const Trace& t) const {
  return spec_.base_runtime_mb + t.param_mb +
         spec_.workspace_factor * t.max_workspace_mb();
}

bool Device::would_oom(const Trace& t) const {
  return peak_memory_mb(t) > spec_.memory_capacity_mb;
}

Breakdown Device::breakdown(const Trace& t) const {
  Breakdown b;
  std::array<double, kNumCategories> ms{};
  for (const auto& op : t.ops)
    ms[static_cast<int>(op.category)] +=
        spec_.op_overhead_ms +
        op.work * spec_.coef[static_cast<int>(op.category)] * 1e3;
  for (double m : ms) b.total_ms += m;
  if (b.total_ms > 0.0)
    for (int c = 0; c < kNumCategories; ++c)
      b.fraction[static_cast<std::size_t>(c)] =
          ms[static_cast<std::size_t>(c)] / b.total_ms;
  return b;
}

double Device::energy_mj(const Trace& t) const {
  return spec_.power_w * latency_ms(t);  // W * ms = mJ
}

Measurement Device::measure(const Trace& t, Rng& rng) const {
  Measurement m;
  m.peak_memory_mb = peak_memory_mb(t);
  m.oom = m.peak_memory_mb > spec_.memory_capacity_mb;
  const double lat = latency_ms(t);
  // Log-normal multiplicative noise with unit mean (sigma from Fig. 8:
  // the Pi's measurements fluctuate heavily, the others are stable).
  const double s = spec_.noise_sigma;
  const double noisy =
      lat * std::exp(s * static_cast<double>(rng.normal()) - 0.5 * s * s);
  m.latency_ms = m.oom ? 0.0 : noisy;
  m.wall_clock_s = spec_.deploy_overhead_s +
                   (m.oom ? 0.0
                          : spec_.measure_runs * lat / 1e3);
  return m;
}

std::string device_kind_name(DeviceKind kind) {
  switch (kind) {
    case DeviceKind::Rtx3080: return "Nvidia RTX3080";
    case DeviceKind::IntelI7_8700K: return "Intel i7-8700K";
    case DeviceKind::JetsonTx2: return "Jetson TX2";
    case DeviceKind::RaspberryPi3B: return "Raspberry Pi 3B+";
  }
  return "unknown";
}

Trace dgcnn_reference_trace(std::int64_t num_points, std::int64_t k,
                            std::int64_t num_classes) {
  check(num_points > 1 && k > 0, "dgcnn_reference_trace: bad arguments");
  const std::int64_t n = num_points;
  const std::int64_t kk = std::min<std::int64_t>(k, n - 1);
  const std::int64_t e = n * kk;
  TraceBuilder tb;
  // Four dynamic EdgeConv layers (Wang et al.): KNN in feature space, an
  // edge-wise MLP on the target||rel message, max aggregation, BN+act.
  const std::int64_t dims[5] = {3, 64, 64, 128, 256};
  double params = 0.0;
  for (int l = 0; l < 4; ++l) {
    const std::int64_t in = dims[l], out = dims[l + 1];
    tb.knn(n, in, kk);
    tb.edge_mlp_aggregate(e, in, out);  // fused message MLP + max reduce
    tb.other(n, out, "bn_act");
    params += static_cast<double>(2 * in * out + out);
  }
  // Head: concat(64+64+128+256=512) -> 1024 embedding -> global max pool ->
  // MLP 512 -> 256 -> classes.
  tb.combine(n, 512, 1024);
  params += 512.0 * 1024.0 + 1024.0;
  tb.other(n, 1024, "global_max_pool");
  tb.combine(1, 1024, 512);
  tb.combine(1, 512, 256);
  tb.combine(1, 256, num_classes);
  params += 1024.0 * 512.0 + 512.0 * 256.0 +
            256.0 * static_cast<double>(num_classes) + 512.0 + 256.0 +
            static_cast<double>(num_classes);
  tb.other(1, 256, "head_act");
  tb.set_param_mb(params * 4.0 / 1e6);
  return tb.build();
}

Device make_device(DeviceKind kind) {
  const CalibTarget target = calibration_target(kind);
  const MemoryProfile mem = memory_profile(kind);

  DeviceSpec spec;
  spec.name = device_kind_name(kind);
  spec.memory_capacity_mb = mem.capacity_mb;
  spec.base_runtime_mb = mem.base_mb;
  spec.workspace_factor = mem.workspace_factor;

  switch (kind) {
    case DeviceKind::Rtx3080:
      spec.op_overhead_ms = 0.05;
      spec.noise_sigma = 0.05;
      spec.power_w = 350.0;
      spec.deploy_overhead_s = 2.0;
      spec.supports_online_measurement = true;
      break;
    case DeviceKind::IntelI7_8700K:
      spec.op_overhead_ms = 0.02;
      spec.noise_sigma = 0.05;
      spec.power_w = 95.0;
      spec.deploy_overhead_s = 1.0;
      spec.supports_online_measurement = true;
      break;
    case DeviceKind::JetsonTx2:
      spec.op_overhead_ms = 0.10;
      spec.noise_sigma = 0.05;
      spec.power_w = 7.5;
      spec.deploy_overhead_s = 12.0;
      spec.supports_online_measurement = false;
      break;
    case DeviceKind::RaspberryPi3B:
      spec.op_overhead_ms = 0.50;
      spec.noise_sigma = 0.20;
      spec.power_w = 5.0;
      spec.deploy_overhead_s = 45.0;
      spec.supports_online_measurement = false;
      break;
  }

  // Solve per-category coefficients against the 1024-point reference DGCNN:
  //   n_ops(cat) * overhead + work(cat) * coef(cat) * 1e3 = pct(cat) * total.
  const Trace ref = dgcnn_reference_trace(1024);
  std::array<int, kNumCategories> op_count{};
  for (const auto& op : ref.ops) ++op_count[static_cast<int>(op.category)];
  for (int c = 0; c < kNumCategories; ++c) {
    const double work = ref.total_work(static_cast<OpCategory>(c));
    const double target_ms =
        target.pct[static_cast<std::size_t>(c)] * target.total_ms -
        op_count[static_cast<std::size_t>(c)] * spec.op_overhead_ms;
    check(work > 0.0, "calibration: reference trace has no work in category " +
                          category_name(static_cast<OpCategory>(c)));
    check(target_ms > 0.0,
          "calibration: op overhead exceeds category budget for " + spec.name);
    spec.coef[static_cast<std::size_t>(c)] = target_ms / work / 1e3;
  }
  return Device(spec);
}

}  // namespace hg::hw
