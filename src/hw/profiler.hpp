// profiler.hpp — human-readable execution reports over device cost models.
//
// Mirrors the role PyTorch Profiler plays in the paper's Observation ③:
// given a lowered trace and a device, produce per-op and per-category
// timing tables (Fig. 3).
#pragma once

#include <string>

#include "hw/device.hpp"

namespace hg::hw {

/// Per-op latency table, sorted by time descending.
std::string profile_report(const Device& device, const Trace& trace);

/// Single-line category summary, e.g.
/// "Sample 53.3% | Aggregate 33.1% | Combine 5.4% | Others 8.2%".
std::string breakdown_summary(const Device& device, const Trace& trace);

}  // namespace hg::hw
