#include "hw/profiler.hpp"

#include <algorithm>
#include <cstdio>
#include <vector>

namespace hg::hw {

std::string profile_report(const Device& device, const Trace& trace) {
  struct Row {
    std::string name;
    OpCategory cat;
    double ms;
  };
  std::vector<Row> rows;
  double total = 0.0;
  for (const auto& op : trace.ops) {
    const double ms =
        device.spec().op_overhead_ms +
        op.work * device.spec().coef[static_cast<int>(op.category)] * 1e3;
    rows.push_back({op.name, op.category, ms});
    total += ms;
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.ms > b.ms; });

  std::string out = "# Profile on " + device.name() + " (total " +
                    std::to_string(total) + " ms)\n";
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%-40s %-10s %12s %8s\n", "op", "category",
                "latency_ms", "share");
  out += buf;
  for (const auto& r : rows) {
    std::snprintf(buf, sizeof(buf), "%-40s %-10s %12.4f %7.2f%%\n",
                  r.name.c_str(), category_name(r.cat).c_str(), r.ms,
                  total > 0 ? 100.0 * r.ms / total : 0.0);
    out += buf;
  }
  return out;
}

std::string breakdown_summary(const Device& device, const Trace& trace) {
  const Breakdown b = device.breakdown(trace);
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "Sample %.1f%% | Aggregate %.1f%% | Combine %.1f%% | "
                "Others %.1f%% (total %.1f ms)",
                100.0 * b.fraction[0], 100.0 * b.fraction[1],
                100.0 * b.fraction[2], 100.0 * b.fraction[3], b.total_ms);
  return buf;
}

}  // namespace hg::hw
