// device.hpp — analytical edge-device cost models.
//
// The paper measures GNN latency / peak memory on four physical devices
// (Nvidia RTX3080, Intel i7-8700K, Jetson TX2, Raspberry Pi 3B+). Those are
// unavailable here, so this module substitutes calibrated analytical
// models (DESIGN.md §1):
//
//  * A GNN execution is lowered to a `Trace` of categorised operations
//    (Sample / Aggregate / Combine / Others — the paper's Fig. 3 taxonomy),
//    each with an abstract work count and a workspace footprint.
//  * A `Device` assigns per-category seconds-per-work coefficients. The
//    coefficients are solved at construction so that the reference DGCNN
//    at 1024 points reproduces the paper's Table II latency *and* Fig. 3
//    execution-time breakdown on that device. Everything else (other
//    architectures, other point counts) follows from the work model.
//  * `measure()` simulates a real on-device measurement: multiplicative
//    log-normal noise (large on the Pi, per Fig. 8) plus a simulated
//    wall-clock cost of deploy + runs, which drives the Fig. 9(a)
//    predictor-vs-measurement ablation.
//
// The latency *predictor* (src/predictor) never sees these formulas — it is
// trained on (architecture, noisy measurement) pairs only, exactly as the
// paper trains on real measurements.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "tensor/rng.hpp"

namespace hg::hw {

/// Operation categories from the paper's profiling taxonomy (Fig. 3).
enum class OpCategory : int { Sample = 0, Aggregate, Combine, Others };
constexpr int kNumCategories = 4;

std::string category_name(OpCategory c);

/// One lowered operation.
struct OpRecord {
  OpCategory category = OpCategory::Others;
  std::string name;      // e.g. "knn(k=20)" — used in profiler reports
  double work = 0.0;     // abstract work units (category-specific)
  double workspace_mb = 0.0;  // transient memory footprint of this op
};

/// A lowered GNN execution (one inference on one input graph).
struct Trace {
  std::vector<OpRecord> ops;
  double param_mb = 0.0;  // model weight footprint

  double total_work(OpCategory c) const;
  double max_workspace_mb() const;
};

/// Lowers GNN-level operations into categorised OpRecords with the work
/// model shared by every architecture in this repo:
///   knn        : n^2 * (dim + log2(k))      (pairwise distances + top-k)
///   random     : n * k                       (index draws)
///   aggregate  : edges * msg_dim             (gather + reduce traffic)
///   combine    : n * in_dim * out_dim        (dense MACs)
///   others     : n * dim                     (activations, norms, pooling)
class TraceBuilder {
 public:
  TraceBuilder& knn(std::int64_t n, std::int64_t dim, std::int64_t k);
  TraceBuilder& random_sample(std::int64_t n, std::int64_t k);
  TraceBuilder& aggregate(std::int64_t edges, std::int64_t msg_dim);
  /// Fused per-edge MLP + reduction, the EdgeConv execution pattern: in
  /// PyG the message MLP runs inside the aggregation phase, which is why
  /// profilers attribute DGCNN's dominant cost to Aggregate (Fig. 3) and
  /// why HGNAS's MLP-free aggregations are so much cheaper.
  /// work = edges * 2*in_dim * out_dim (edge-MLP MACs dominate).
  TraceBuilder& edge_mlp_aggregate(std::int64_t edges, std::int64_t in_dim,
                                   std::int64_t out_dim);
  TraceBuilder& combine(std::int64_t n, std::int64_t in_dim,
                        std::int64_t out_dim);
  TraceBuilder& other(std::int64_t n, std::int64_t dim,
                      const std::string& name);

  TraceBuilder& set_param_mb(double mb);
  Trace build() const { return trace_; }

 private:
  Trace trace_;
};

/// Static device description; see make_device() for the four calibrated
/// edge profiles.
struct DeviceSpec {
  std::string name;
  // Seconds per work unit for each category (solved by calibration).
  std::array<double, kNumCategories> coef{};
  double op_overhead_ms = 0.0;   // dispatch overhead per lowered op
  double memory_capacity_mb = 0.0;   // OOM threshold (usable memory)
  double base_runtime_mb = 0.0;      // framework-resident footprint
  double workspace_factor = 1.0;     // allocator slack on transient buffers
  double noise_sigma = 0.03;         // relative measurement noise
  double power_w = 0.0;              // TDP, for power-efficiency claims
  // Simulated cost of one real measurement (deploy + transfer + warmup).
  double deploy_overhead_s = 1.0;
  int measure_runs = 10;             // paper averages 10 runs
  bool supports_online_measurement = true;  // false: TX2 / Pi (paper §IV-D)
};

/// Result of one simulated on-device measurement.
struct Measurement {
  double latency_ms = 0.0;      // noisy
  double peak_memory_mb = 0.0;  // deterministic
  bool oom = false;             // exceeded device memory: latency invalid
  double wall_clock_s = 0.0;    // simulated time this measurement consumed
};

/// Per-category latency shares (sums to 1 unless the trace is empty).
struct Breakdown {
  std::array<double, kNumCategories> fraction{};
  double total_ms = 0.0;
};

class Device {
 public:
  explicit Device(DeviceSpec spec);

  const std::string& name() const { return spec_.name; }
  const DeviceSpec& spec() const { return spec_; }

  /// Deterministic analytical latency in milliseconds.
  double latency_ms(const Trace& t) const;

  /// Deterministic peak memory in MB (base + params + scaled workspace).
  double peak_memory_mb(const Trace& t) const;

  bool would_oom(const Trace& t) const;

  /// Per-category execution-time breakdown (reproduces Fig. 3).
  Breakdown breakdown(const Trace& t) const;

  /// Energy of one inference in millijoules (TDP x latency) — the basis of
  /// the paper's §I power-efficiency claim (TX2 at DGCNN-on-RTX latency
  /// with 47x less power).
  double energy_mj(const Trace& t) const;

  /// Simulated physical measurement: noisy latency, wall-clock cost.
  Measurement measure(const Trace& t, Rng& rng) const;

 private:
  DeviceSpec spec_;
};

/// The four edge platforms evaluated in the paper.
enum class DeviceKind { Rtx3080 = 0, IntelI7_8700K, JetsonTx2, RaspberryPi3B };
constexpr int kNumDevices = 4;

/// Build the calibrated model for a platform. Calibration solves the
/// per-category coefficients against the reference DGCNN trace at 1024
/// points so that total latency and the Fig. 3 breakdown match the paper.
Device make_device(DeviceKind kind);

std::string device_kind_name(DeviceKind kind);

/// Reference DGCNN (4 EdgeConv layers 64-64-128-256, k=20, classifier
/// 512-512-256-C) lowered at a given point count — the calibration anchor
/// and the Fig. 1 workload.
Trace dgcnn_reference_trace(std::int64_t num_points, std::int64_t k = 20,
                            std::int64_t num_classes = 40);

}  // namespace hg::hw
