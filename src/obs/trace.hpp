// trace.hpp — hg::obs request-scoped tracing: spans from socket to slice,
// exported as Chrome trace_event JSON (load the file in chrome://tracing
// or https://ui.perfetto.dev).
//
// Model:
//   * A SPAN is one timed interval on one thread — "net.request",
//     "serve.queue_wait", "serve.slice", "search.stage2", "train.epoch" —
//     recorded as a Chrome "complete" event (ph "X") with its wall-clock
//     start and duration.
//   * Every span carries a TRACE ID linking it to the request it serves.
//     The net layer uses the frame header's request id verbatim, so a
//     remote predict's server-side spans are attributable to the
//     originating client call; locally-submitted requests draw ids from a
//     process counter with the top bit set (so the two pools never
//     collide). The id rides a thread-local (ScopedTraceId), so spans
//     emitted deep inside a stepper inherit the request's id without any
//     plumbing through the call stack.
//   * The collector is a fixed-capacity ring: steady-state tracing keeps
//     the newest events and write_json() says how many were dropped.
//
// Overhead when disabled (the default): every HG_TRACE_* site is one
// relaxed atomic load and a branch — no clock read, no allocation, no
// lock. CI's --require-speedup perf gates run exactly this configuration.
// Compiling with -DHG_NO_TRACING removes the sites entirely (macros
// expand to nothing). When enabled, recording takes a short mutex hold on
// the ring — tracing is a diagnosis mode, not a production default.
//
// Usage:
//   obs::TraceCollector::global().start();            // enable
//   { HG_TRACE_SCOPE("serve.slice", "serve"); ... }   // span the scope
//   obs::TraceCollector::global().write_json(path);   // export
//   obs::TraceCollector::global().stop();
//
// serve::Service wires this to ServiceConfig::trace_path: non-empty means
// start() at create and write_json(path) + stop() at shutdown.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "core/annotations.hpp"

namespace hg::obs {

/// One completed span (Chrome "X" event).
struct TraceEvent {
  std::string name;           // e.g. "serve.slice"
  const char* cat = "";       // layer: "net" / "serve" / "search" / "train"
  std::uint64_t trace_id = 0; // request attribution (0 = unattributed)
  std::int64_t ts_us = 0;     // start, us since the process trace epoch
  std::int64_t dur_us = 0;
  std::uint32_t tid = 0;      // small per-thread ordinal
};

class TraceCollector {
 public:
  static TraceCollector& global();

  /// Enable collection into a ring of `capacity` events (idempotent; a
  /// second start() keeps the existing ring). Oldest events are
  /// overwritten once full.
  void start(std::size_t capacity = 1 << 16);
  /// Disable and discard everything collected.
  void stop();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Record one completed span; dropped silently when disabled.
  void record(TraceEvent ev);

  /// The collected events, oldest first (for tests and custom exporters).
  std::vector<TraceEvent> events() const;

  /// Write Chrome trace_event JSON ({"traceEvents": [...]}) to `path`.
  /// False on I/O failure. The file also carries how many events the ring
  /// dropped (metadata event "trace.dropped") when it wrapped.
  bool write_json(const std::string& path) const;

 private:
  TraceCollector() = default;

  mutable core::Mutex mutex_;
  std::vector<TraceEvent> ring_ HG_GUARDED_BY(mutex_);
  std::size_t ring_capacity_ HG_GUARDED_BY(mutex_) = 0;
  std::size_t next_ HG_GUARDED_BY(mutex_) = 0;      // ring write cursor
  std::size_t dropped_ HG_GUARDED_BY(mutex_) = 0;   // overwritten events
  bool wrapped_ HG_GUARDED_BY(mutex_) = false;
  std::atomic<bool> enabled_{false};
};

/// True when the global collector is collecting — the one check every
/// trace site performs before paying for a clock read.
inline bool tracing_enabled() { return TraceCollector::global().enabled(); }

/// Microseconds since the process trace epoch (steady clock; all spans
/// share it so the exported timeline lines up).
std::int64_t trace_now_us();
std::int64_t trace_ts_us(std::chrono::steady_clock::time_point tp);

/// The calling thread's current request attribution (0 = none) and a
/// fresh process-local id (top bit set — never collides with a wire
/// request id).
std::uint64_t current_trace_id();
std::uint64_t next_local_trace_id();

/// Attributes every span the calling thread emits in this scope to one
/// request. Nests: the previous id is restored on destruction.
class ScopedTraceId {
 public:
  explicit ScopedTraceId(std::uint64_t id);
  ~ScopedTraceId();
  ScopedTraceId(const ScopedTraceId&) = delete;
  ScopedTraceId& operator=(const ScopedTraceId&) = delete;

 private:
  std::uint64_t prev_;
};

/// RAII span: records [construction, destruction) under the thread's
/// current trace id — when the collector is enabled at construction.
class ScopedSpan {
 public:
  ScopedSpan(const char* name, const char* cat)
      : armed_(tracing_enabled()), name_(name), cat_(cat),
        start_us_(armed_ ? trace_now_us() : 0) {}
  /// Span with an explicit name (e.g. the stepper's current phase).
  ScopedSpan(std::string name, const char* cat)
      : armed_(tracing_enabled()), dynamic_name_(std::move(name)),
        cat_(cat), start_us_(armed_ ? trace_now_us() : 0) {}
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  bool armed_;
  const char* name_ = nullptr;
  std::string dynamic_name_;
  const char* cat_;
  std::int64_t start_us_;
};

/// Record a span whose endpoints were measured elsewhere (queue waits:
/// enqueue time -> dispatch time). No-op when disabled.
void record_span(const char* name, const char* cat, std::uint64_t trace_id,
                 std::chrono::steady_clock::time_point start,
                 std::chrono::steady_clock::time_point end);

}  // namespace hg::obs

// Trace sites compile to nothing under HG_NO_TRACING; otherwise each is a
// relaxed load + branch when tracing is off.
#if defined(HG_NO_TRACING)
#define HG_TRACE_SCOPE(name, cat)
#define HG_TRACE_ID(id)
#else
#define HG_TRACE_CONCAT2(a, b) a##b
#define HG_TRACE_CONCAT(a, b) HG_TRACE_CONCAT2(a, b)
#define HG_TRACE_SCOPE(name, cat) \
  ::hg::obs::ScopedSpan HG_TRACE_CONCAT(hg_trace_span_, __LINE__)(name, cat)
#define HG_TRACE_ID(id) \
  ::hg::obs::ScopedTraceId HG_TRACE_CONCAT(hg_trace_id_, __LINE__)(id)
#endif
