#include "obs/trace.hpp"

#include <unistd.h>

#include <cstdio>

namespace hg::obs {

namespace {

std::chrono::steady_clock::time_point trace_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

std::uint32_t this_thread_tid() {
  static std::atomic<std::uint32_t> next_tid{0};
  thread_local std::uint32_t tid =
      next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

thread_local std::uint64_t t_trace_id = 0;

// Escape a span name for direct embedding in a JSON string literal.
// Instrument names are plain identifiers; this just keeps a hostile name
// from corrupting the file.
void append_json_escaped(std::string* out, const std::string& s) {
  for (const char ch : s) {
    if (ch == '"' || ch == '\\') {
      out->push_back('\\');
      out->push_back(ch);
    } else if (static_cast<unsigned char>(ch) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(ch)));
      *out += buf;
    } else {
      out->push_back(ch);
    }
  }
}

}  // namespace

TraceCollector& TraceCollector::global() {
  static TraceCollector collector;
  return collector;
}

void TraceCollector::start(std::size_t capacity) {
  if (capacity == 0) capacity = 1;
  {
    core::MutexLock lock(mutex_);
    if (ring_.empty()) {
      ring_.reserve(capacity);
      ring_.resize(0);
      next_ = 0;
      dropped_ = 0;
      wrapped_ = false;
      ring_capacity_ = capacity;
    }
  }
  enabled_.store(true, std::memory_order_release);
}

void TraceCollector::stop() {
  enabled_.store(false, std::memory_order_release);
  core::MutexLock lock(mutex_);
  ring_.clear();
  ring_.shrink_to_fit();
  next_ = 0;
  dropped_ = 0;
  wrapped_ = false;
  ring_capacity_ = 0;
}

void TraceCollector::record(TraceEvent ev) {
  if (!enabled()) return;
  core::MutexLock lock(mutex_);
  if (ring_capacity_ == 0) return;  // stop() raced us; drop
  if (ring_.size() < ring_capacity_) {
    ring_.push_back(std::move(ev));
  } else {
    ring_[next_] = std::move(ev);
    next_ = (next_ + 1) % ring_capacity_;
    wrapped_ = true;
    ++dropped_;
  }
}

std::vector<TraceEvent> TraceCollector::events() const {
  core::MutexLock lock(mutex_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (wrapped_) {
    // next_ points at the oldest surviving event.
    out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(next_),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<std::ptrdiff_t>(next_));
  } else {
    out = ring_;
  }
  return out;
}

bool TraceCollector::write_json(const std::string& path) const {
  const std::vector<TraceEvent> evs = events();
  std::size_t dropped = 0;
  {
    core::MutexLock lock(mutex_);
    dropped = dropped_;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const long long pid = static_cast<long long>(::getpid());
  std::string body = "{\"traceEvents\":[\n";
  bool first = true;
  for (const auto& ev : evs) {
    if (!first) body += ",\n";
    first = false;
    body += "{\"name\":\"";
    append_json_escaped(&body, ev.name);
    body += "\",\"cat\":\"";
    append_json_escaped(&body, ev.cat);
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "\",\"ph\":\"X\",\"ts\":%lld,\"dur\":%lld,\"pid\":%lld,"
                  "\"tid\":%u,\"args\":{\"trace_id\":%llu}}",
                  static_cast<long long>(ev.ts_us),
                  static_cast<long long>(ev.dur_us), pid,
                  static_cast<unsigned>(ev.tid),
                  static_cast<unsigned long long>(ev.trace_id));
    body += buf;
  }
  if (dropped > 0) {
    if (!first) body += ",\n";
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"trace.dropped\",\"ph\":\"M\",\"ts\":0,"
                  "\"pid\":%lld,\"tid\":0,"
                  "\"args\":{\"dropped_events\":%llu}}",
                  pid, static_cast<unsigned long long>(dropped));
    body += buf;
  }
  body += "\n]}\n";
  const bool ok =
      std::fwrite(body.data(), 1, body.size(), f) == body.size();
  return (std::fclose(f) == 0) && ok;
}

std::int64_t trace_now_us() {
  return trace_ts_us(std::chrono::steady_clock::now());
}

std::int64_t trace_ts_us(std::chrono::steady_clock::time_point tp) {
  return std::chrono::duration_cast<std::chrono::microseconds>(tp -
                                                               trace_epoch())
      .count();
}

std::uint64_t current_trace_id() { return t_trace_id; }

std::uint64_t next_local_trace_id() {
  static std::atomic<std::uint64_t> next_id{1};
  return (std::uint64_t{1} << 63) |
         next_id.fetch_add(1, std::memory_order_relaxed);
}

ScopedTraceId::ScopedTraceId(std::uint64_t id) : prev_(t_trace_id) {
  t_trace_id = id;
}

ScopedTraceId::~ScopedTraceId() { t_trace_id = prev_; }

ScopedSpan::~ScopedSpan() {
  if (!armed_) return;
  const std::int64_t end_us = trace_now_us();
  TraceEvent ev;
  ev.name = name_ != nullptr ? std::string(name_) : dynamic_name_;
  ev.cat = cat_;
  ev.trace_id = t_trace_id;
  ev.ts_us = start_us_;
  ev.dur_us = end_us - start_us_;
  ev.tid = this_thread_tid();
  TraceCollector::global().record(std::move(ev));
}

void record_span(const char* name, const char* cat, std::uint64_t trace_id,
                 std::chrono::steady_clock::time_point start,
                 std::chrono::steady_clock::time_point end) {
  if (!tracing_enabled()) return;
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.trace_id = trace_id;
  ev.ts_us = trace_ts_us(start);
  ev.dur_us = trace_ts_us(end) - ev.ts_us;
  ev.tid = this_thread_tid();
  TraceCollector::global().record(std::move(ev));
}

}  // namespace hg::obs
