// metrics.hpp — hg::obs, the process observability layer: a named metrics
// registry of lazily-registered counters / gauges / histograms.
//
// Design rules, in priority order:
//   * Lock-free hot path. Recording (Counter::inc, Gauge::set/max_of,
//     Histogram::record_us) is one relaxed atomic op — never a lock, never
//     an allocation. The registry mutex is taken only at REGISTRATION
//     (first lookup of a name) and at snapshot time; instrument handles are
//     resolved once and cached by the instrumented code.
//   * Stable handles. Instruments live in node-based maps, so the
//     reference returned by Registry::counter(...) stays valid for the
//     registry's lifetime — register at startup, bump forever.
//   * One stable snapshot shape. Registry::snapshot() flattens every
//     instrument into a name -> int64 map (histograms expand to
//     `<name>.p50_us` / `.p99_us` / `.count`), which is what the wire's
//     kStats frame carries and what render_snapshot() pretty-prints —
//     serve::ServiceStats and net::NetStats are thin views over the same
//     instruments, so the remote snapshot and the local structs can never
//     drift.
//
// Naming scheme: `<layer>.<counter>` with lowercase snake_case leaves —
// "serve.requests", "net.frames_received", "engine.searches",
// "serve.queue_wait_us.p99_us". The prefix groups the rendered output.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "core/annotations.hpp"

namespace hg::obs {

/// Monotone counter. inc() is one relaxed fetch_add — safe from any
/// thread, never blocks, never allocates.
class Counter {
 public:
  void inc(std::int64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Point-in-time value. set() overwrites; max_of() is a relaxed CAS-max
/// (high-watermark gauges like the largest coalesced batch).
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void max_of(std::int64_t v) {
    std::int64_t cur = v_.load(std::memory_order_relaxed);
    while (cur < v &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Lock-free latency histogram: log-linear microsecond buckets bumped with
/// relaxed atomics, so hot paths record timings without taking any lock.
///
/// Buckets are 4 linear sub-buckets per power-of-two octave ("log-linear",
/// the HdrHistogram layout at 2 significant bits): values 0..3 are exact,
/// and from 4 up each octave [2^m, 2^(m+1)) splits into 4 equal ranges of
/// width 2^(m-2). Quantile reads return the bucket's upper bound, so a
/// reported percentile overestimates the true one by < 25% (vs. the < 2x
/// of plain log2 buckets) at 4x the bucket count — still a fixed 156-slot
/// array, no allocation.
class Histogram {
 public:
  void record_us(std::int64_t us) {
    buckets_[bucket_index(us)].fetch_add(1, std::memory_order_relaxed);
  }

  /// Upper bound (us) of the bucket holding quantile `p` in [0, 1];
  /// 0 when nothing has been recorded yet.
  std::int64_t percentile_us(double p) const {
    std::array<std::int64_t, kBuckets> counts;
    std::int64_t total = 0;
    for (std::size_t b = 0; b < kBuckets; ++b)
      total += counts[b] = buckets_[b].load(std::memory_order_relaxed);
    if (total == 0) return 0;
    const double target = p * static_cast<double>(total);
    std::int64_t seen = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      seen += counts[b];
      if (static_cast<double>(seen) >= target) return bucket_upper(b);
    }
    return bucket_upper(kBuckets - 1);
  }

  std::int64_t count() const {
    std::int64_t total = 0;
    for (const auto& b : buckets_)
      total += b.load(std::memory_order_relaxed);
    return total;
  }

  /// Exposed for the property tests: the bucket a value lands in and that
  /// bucket's inclusive upper bound.
  static std::size_t bucket_index(std::int64_t us) {
    if (us <= 0) return 0;
    const auto v = static_cast<std::uint64_t>(us);
    if (v < 4) return static_cast<std::size_t>(v);
    // Octave m = floor(log2 v) >= 2; sub-bucket = the next 2 bits below
    // the leading one.
    int msb = 0;
    for (std::uint64_t x = v; x > 1; x >>= 1) ++msb;
    const int shift = msb - 2;
    const auto within =
        static_cast<std::size_t>((v >> shift) & 3);
    const std::size_t idx =
        4 + static_cast<std::size_t>(msb - 2) * 4 + within;
    return idx < kBuckets ? idx : kBuckets - 1;
  }

  static std::int64_t bucket_upper(std::size_t b) {
    if (b < 4) return static_cast<std::int64_t>(b);
    const int m = 2 + static_cast<int>((b - 4) / 4);
    const auto within = static_cast<std::int64_t>((b - 4) % 4);
    const std::int64_t lower =
        (std::int64_t{1} << m) + (within << (m - 2));
    return lower + (std::int64_t{1} << (m - 2)) - 1;
  }

 private:
  // 4 exact slots (0..3) + 4 sub-buckets for each octave m = 2..39:
  // covers everything up to ~2^40 us (~13 days) before clamping.
  static constexpr std::size_t kBuckets = 4 + 38 * 4;
  std::array<std::atomic<std::int64_t>, kBuckets> buckets_{};
};

/// The flattened name -> value view of a registry (or of a remote peer's,
/// via the wire's kStats frame). Ordered so renderings and wire encodings
/// are deterministic.
using Snapshot = std::map<std::string, std::int64_t>;

/// A named instrument table. Instruments are registered lazily on first
/// lookup and live as long as the registry; lookups of an existing name
/// return the same instrument, so `&registry.counter("x")` taken once is
/// valid forever (node-based map storage — no reallocation).
///
/// Each serve::Service owns one Registry (two services in one process must
/// not merge their queues' counters); process-global instruments (the
/// Engine verbs) use Registry::global().
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry (Engine verb counters, anything without a
  /// narrower owner).
  static Registry& global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Flatten every instrument: counters and gauges by name, histograms as
  /// `<name>.p50_us` / `<name>.p99_us` / `<name>.count`.
  Snapshot snapshot() const;

 private:
  mutable core::Mutex mutex_;  // registration + snapshot only, never record
  std::map<std::string, Counter, std::less<>> counters_
      HG_GUARDED_BY(mutex_);
  std::map<std::string, Gauge, std::less<>> gauges_ HG_GUARDED_BY(mutex_);
  std::map<std::string, Histogram, std::less<>> histograms_
      HG_GUARDED_BY(mutex_);
};

/// Render a snapshot as an aligned, prefix-grouped text block (the shared
/// stats printout of serve_demo / net_server_demo / net_client_demo
/// --stats). A blank line separates name prefixes ("engine.", "net.",
/// "serve.").
std::string render_snapshot(const Snapshot& snap);

}  // namespace hg::obs
