#include "obs/metrics.hpp"

#include <cstdio>

namespace hg::obs {

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(std::string_view name) {
  core::MutexLock lock(mutex_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.try_emplace(std::string(name)).first->second;
}

Gauge& Registry::gauge(std::string_view name) {
  core::MutexLock lock(mutex_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  return gauges_.try_emplace(std::string(name)).first->second;
}

Histogram& Registry::histogram(std::string_view name) {
  core::MutexLock lock(mutex_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.try_emplace(std::string(name)).first->second;
}

Snapshot Registry::snapshot() const {
  Snapshot snap;
  core::MutexLock lock(mutex_);
  for (const auto& [name, c] : counters_) snap[name] = c.value();
  for (const auto& [name, g] : gauges_) snap[name] = g.value();
  for (const auto& [name, h] : histograms_) {
    snap[name + ".p50_us"] = h.percentile_us(0.50);
    snap[name + ".p99_us"] = h.percentile_us(0.99);
    snap[name + ".count"] = h.count();
  }
  return snap;
}

std::string render_snapshot(const Snapshot& snap) {
  std::size_t width = 0;
  for (const auto& [name, value] : snap)
    width = name.size() > width ? name.size() : width;
  std::string out;
  std::string prev_prefix;
  for (const auto& [name, value] : snap) {
    const std::string prefix = name.substr(0, name.find('.'));
    if (!prev_prefix.empty() && prefix != prev_prefix) out += '\n';
    prev_prefix = prefix;
    char line[256];
    std::snprintf(line, sizeof(line), "  %-*s %12lld\n",
                  static_cast<int>(width), name.c_str(),
                  static_cast<long long>(value));
    out += line;
  }
  return out;
}

}  // namespace hg::obs
